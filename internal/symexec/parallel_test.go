package symexec

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/soft-testing/soft/internal/coverage"
	"github.com/soft-testing/soft/internal/sym"
)

// fingerprint renders everything observable about a Result into one string,
// so two runs can be compared for byte-identical output.
func fingerprint(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "paths=%d infeasible=%d depthTrunc=%d truncated=%t queries=%d\n",
		len(res.Paths), res.Infeasible, res.DepthTruncated, res.PathsTruncated, res.BranchQueries)
	var inputs []string
	for name, v := range res.Inputs {
		inputs = append(inputs, fmt.Sprintf("%s:%d", name, v.Width()))
	}
	sort.Strings(inputs)
	fmt.Fprintf(&b, "inputs=%v\n", inputs)
	if res.Cov != nil {
		fmt.Fprintf(&b, "cov=%.4f/%.4f\n", res.Cov.InstructionPct(), res.Cov.BranchPct())
	}
	for _, p := range res.Paths {
		fmt.Fprintf(&b, "path %d dec=%v cond=%s outputs=%v crashed=%t msg=%q branches=%d",
			p.ID, p.Decisions, p.Condition().String(), p.Outputs, p.Crashed, p.CrashMsg, p.Branches)
		if p.Model != nil {
			var kv []string
			for k, v := range p.Model {
				kv = append(kv, fmt.Sprintf("%s=%d", k, v))
			}
			sort.Strings(kv)
			fmt.Fprintf(&b, " model=%v", kv)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// parallelHandlers is the handler zoo the determinism tests sweep: every
// engine outcome class is represented (fork, no-fork, crash, infeasible
// assumption, correlated prune).
func parallelHandlers() map[string]Handler {
	return map[string]Handler{
		"paper-example": paperExample,
		"exponential-256": func(ctx *Context) {
			x := ctx.NewSym("x", 8)
			n := 0
			for i := 0; i < 8; i++ {
				if ctx.Branch(sym.EqConst(sym.Extract(x, i, i), 1)) {
					n++
				}
			}
			ctx.Emit(n)
		},
		"crash": func(ctx *Context) {
			p := ctx.NewSym("port", 16)
			if ctx.Branch(sym.EqConst(p, 0xfffd)) {
				ctx.Crash("segfault")
			}
			ctx.Emit("ok")
		},
		"assume-infeasible": func(ctx *Context) {
			v := ctx.NewSym("x", 8)
			if ctx.Branch(sym.Ult(v, sym.Const(8, 16))) {
				ctx.Assume(sym.EqConst(v, 200)) // contradicts the branch
				ctx.Emit("unreachable")
			} else {
				ctx.Emit("hi")
			}
		},
		"correlated": func(ctx *Context) {
			a := ctx.NewSym("a", 8)
			lt10 := ctx.Branch(sym.Ult(a, sym.Const(8, 10)))
			lt20 := ctx.Branch(sym.Ult(a, sym.Const(8, 20)))
			ctx.Emit(fmt.Sprintf("%v%v", lt10, lt20))
		},
	}
}

// TestParallelMatchesSequential is the core determinism property: for
// exhaustive exploration, any worker count produces a byte-identical Result.
func TestParallelMatchesSequential(t *testing.T) {
	for name, h := range parallelHandlers() {
		t.Run(name, func(t *testing.T) {
			seq := (&Engine{Workers: 1, WantModels: true}).Run(h)
			want := fingerprint(seq)
			for _, workers := range []int{2, 4, 8} {
				par := (&Engine{Workers: workers, WantModels: true}).Run(h)
				if got := fingerprint(par); got != want {
					t.Fatalf("workers=%d diverged from sequential:\n--- sequential\n%s--- parallel\n%s",
						workers, want, got)
				}
			}
		})
	}
}

// TestParallelMatchesSequentialAllStrategies checks canonical ordering makes
// the result independent of both the strategy and the worker count.
func TestParallelMatchesSequentialAllStrategies(t *testing.T) {
	mks := map[string]func() Strategy{
		"dfs":         NewDFS,
		"bfs":         NewBFS,
		"random":      func() Strategy { return NewRandom(42) },
		"cov-opt":     NewCoverageOptimized,
		"interleaved": func() Strategy { return NewInterleaved(7) },
	}
	base := (&Engine{Workers: 1}).Run(paperExample)
	want := fingerprint(base)
	for name, mk := range mks {
		for _, workers := range []int{1, 4} {
			e := &Engine{Workers: workers, Strategy: mk()}
			res := e.Run(paperExample)
			if got := fingerprint(res); got != want {
				t.Errorf("strategy=%s workers=%d diverged:\n--- want\n%s--- got\n%s",
					name, workers, want, got)
			}
		}
	}
}

// TestParallelCoverage checks per-path and cumulative coverage survive the
// parallel merge.
func TestParallelCoverage(t *testing.T) {
	m := coverage.NewMap()
	bFwd := m.Block("fwd", 5)
	bErr := m.Block("err", 5)
	brPort := m.BranchSite("port-range")
	h := func(ctx *Context) {
		p := ctx.NewSym("port", 16)
		if ctx.BranchSite(brPort, sym.Ult(p, sym.Const(16, 25))) {
			ctx.Cover(bFwd)
		} else {
			ctx.Cover(bErr)
		}
	}
	for _, workers := range []int{1, 4} {
		res := (&Engine{Workers: workers, CovMap: m}).Run(h)
		if len(res.Paths) != 2 {
			t.Fatalf("workers=%d: %d paths", workers, len(res.Paths))
		}
		if got := res.Cov.InstructionPct(); got != 100 {
			t.Fatalf("workers=%d: cumulative instruction coverage %v", workers, got)
		}
		if got := res.Cov.BranchPct(); got != 100 {
			t.Fatalf("workers=%d: cumulative branch coverage %v", workers, got)
		}
		for _, p := range res.Paths {
			if p.Cov.InstructionPct() == 100 {
				t.Fatalf("workers=%d: a single path cannot cover both arms", workers)
			}
		}
	}
}

// TestParallelMaxPaths: the cap keeps exactly MaxPaths paths and flags
// truncation, whatever the worker count.
func TestParallelMaxPaths(t *testing.T) {
	h := func(ctx *Context) {
		x := ctx.NewSym("x", 16)
		for i := 0; i < 10; i++ {
			ctx.Branch(sym.EqConst(sym.Extract(x, i, i), 1))
		}
	}
	for _, workers := range []int{2, 4, 8} {
		res := (&Engine{Workers: workers, MaxPaths: 5}).Run(h)
		if len(res.Paths) != 5 {
			t.Fatalf("workers=%d: got %d paths, want 5", workers, len(res.Paths))
		}
		if !res.PathsTruncated {
			t.Fatalf("workers=%d: PathsTruncated must be set", workers)
		}
	}
}

// TestParallelMaxDepth: depth truncation counts match sequential.
func TestParallelMaxDepth(t *testing.T) {
	h := func(ctx *Context) {
		x := ctx.NewSym("x", 16)
		for i := 0; i < 10; i++ {
			ctx.Branch(sym.EqConst(sym.Extract(x, i, i), 1))
		}
		ctx.Emit("done")
	}
	seq := (&Engine{Workers: 1, MaxDepth: 3}).Run(h)
	par := (&Engine{Workers: 4, MaxDepth: 3}).Run(h)
	if seq.DepthTruncated == 0 {
		t.Fatal("expected depth-truncated paths")
	}
	if fingerprint(seq) != fingerprint(par) {
		t.Fatalf("depth-limited runs diverged:\n--- seq\n%s--- par\n%s",
			fingerprint(seq), fingerprint(par))
	}
}

// TestParallelRepeatedRuns hammers the work-stealing frontier: many
// back-to-back parallel explorations of a wide tree must all agree. Run
// with -race this doubles as the engine's data-race test.
func TestParallelRepeatedRuns(t *testing.T) {
	h := func(ctx *Context) {
		x := ctx.NewSym("x", 16)
		n := 0
		for i := 0; i < 10; i++ {
			if ctx.Branch(sym.EqConst(sym.Extract(x, i, i), 1)) {
				n++
			}
		}
		ctx.Emit(n)
	}
	want := fingerprint((&Engine{Workers: 1}).Run(h))
	runs := 5
	if testing.Short() {
		runs = 2
	}
	for i := 0; i < runs; i++ {
		res := (&Engine{Workers: 8}).Run(h)
		if len(res.Paths) != 1024 {
			t.Fatalf("run %d: %d paths, want 1024", i, len(res.Paths))
		}
		if got := fingerprint(res); got != want {
			t.Fatalf("run %d diverged from sequential", i)
		}
	}
}

// TestWorkerStrategyDerivation: every built-in strategy yields independent
// per-worker instances; randomized ones derive distinct seeds.
func TestWorkerStrategyDerivation(t *testing.T) {
	for _, mk := range []func() Strategy{
		NewDFS, NewBFS,
		func() Strategy { return NewRandom(3) },
		NewCoverageOptimized,
		func() Strategy { return NewInterleaved(3) },
	} {
		s := mk()
		ws, ok := s.(WorkerStrategy)
		if !ok {
			t.Fatalf("strategy %s does not implement WorkerStrategy", s.Name())
		}
		a, b := ws.ForWorker(0), ws.ForWorker(1)
		if a == s || b == s || a == b {
			t.Fatalf("strategy %s: ForWorker must return fresh instances", s.Name())
		}
		if a.Name() != s.Name() {
			t.Fatalf("strategy %s: ForWorker changed kind to %s", s.Name(), a.Name())
		}
		// The derived instance must be usable in isolation.
		a.Push(&workItem{decisions: []bool{true}, site: -1})
		if it, ok := a.Pop(nil); !ok || len(it.decisions) != 1 {
			t.Fatalf("strategy %s: derived instance broken", s.Name())
		}
	}
}

// TestInterleavedLenExact: interleaved keeps one backing store behind two
// views; Len must report the real item count after pops from either view
// (the parallel rebalance and leftover accounting depend on it).
func TestInterleavedLenExact(t *testing.T) {
	s := NewInterleaved(1)
	for i := 0; i < 4; i++ {
		s.Push(&workItem{decisions: []bool{true}, site: -1})
	}
	for want := 3; want >= 0; want-- {
		if _, ok := s.Pop(nil); !ok {
			t.Fatalf("pop failed with %d items left", want+1)
		}
		if got := s.Len(); got != want {
			t.Fatalf("Len() = %d after pop, want %d", got, want)
		}
	}
	if _, ok := s.Pop(nil); ok {
		t.Fatal("pop succeeded on empty strategy")
	}
}

// seqOnlyStrategy is a LIFO Strategy that deliberately does not implement
// WorkerStrategy (no embedding: promotion would leak ForWorker).
type seqOnlyStrategy struct {
	items []*workItem
	pops  int
}

func (s *seqOnlyStrategy) Name() string      { return "seq-only" }
func (s *seqOnlyStrategy) Len() int          { return len(s.items) }
func (s *seqOnlyStrategy) Push(it *workItem) { s.items = append(s.items, it) }
func (s *seqOnlyStrategy) Pop(*coverage.Set) (*workItem, bool) {
	s.pops++
	if len(s.items) == 0 {
		return nil, false
	}
	it := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return it, true
}

// TestCustomStrategyForcedSequential: a custom strategy without per-worker
// derivation must be honored exactly — the engine falls back to sequential
// exploration instead of silently substituting a different search order.
func TestCustomStrategyForcedSequential(t *testing.T) {
	st := &seqOnlyStrategy{}
	res := (&Engine{Workers: 4, Strategy: st}).Run(paperExample)
	if len(res.Paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(res.Paths))
	}
	if st.pops == 0 {
		t.Fatal("custom strategy was bypassed")
	}
	if got := fingerprint(res); got != fingerprint((&Engine{Workers: 1}).Run(paperExample)) {
		t.Fatal("custom-strategy run diverged from canonical result")
	}
}

// TestLessDecisions pins the canonical order: lexicographic, false < true,
// prefix first.
func TestLessDecisions(t *testing.T) {
	f, tr := false, true
	cases := []struct {
		a, b []bool
		want bool
	}{
		{nil, nil, false},
		{nil, []bool{f}, true},
		{[]bool{f}, nil, false},
		{[]bool{f}, []bool{tr}, true},
		{[]bool{tr}, []bool{f}, false},
		{[]bool{f, tr}, []bool{tr}, true},
		{[]bool{f, tr}, []bool{f, f}, false},
		{[]bool{f, f}, []bool{f, tr}, true},
		{[]bool{f, f}, []bool{f, f, tr}, true},
	}
	for _, c := range cases {
		if got := LessDecisions(c.a, c.b); got != c.want {
			t.Errorf("LessDecisions(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
