package symexec

import (
	"testing"

	"github.com/soft-testing/soft/internal/sym"
)

// TestClauseSharingDeterminism is the acceptance property for the shared
// solver stack: exhaustive exploration must produce byte-identical results
// across every combination of worker count and clause sharing — imported
// clauses may only shortcut conflicts, never change an answer, and witness
// models are canonical rather than trajectory-dependent.
func TestClauseSharingDeterminism(t *testing.T) {
	for name, h := range parallelHandlers() {
		t.Run(name, func(t *testing.T) {
			want := fingerprint((&Engine{Workers: 1, WantModels: true}).Run(h))
			for _, workers := range []int{1, 4} {
				for _, sharing := range []bool{false, true} {
					e := &Engine{Workers: workers, WantModels: true, ClauseSharing: sharing}
					if got := fingerprint(e.Run(h)); got != want {
						t.Fatalf("workers=%d sharing=%t diverged:\n--- want\n%s--- got\n%s",
							workers, sharing, want, got)
					}
				}
			}
		})
	}
}

// TestClauseSharingTraffic checks the exchange actually carries clauses on
// a workload with dense shared structure, and that the engine reports the
// traffic (so users can see whether sharing does anything on their agent).
func TestClauseSharingTraffic(t *testing.T) {
	// Handler with heavy correlated structure: every path re-derives the
	// same hard multiplication relation, so its conflicts repeat across
	// paths and short learned clauses are worth exchanging.
	h := func(ctx *Context) {
		x := ctx.NewSym("x", 16)
		y := ctx.NewSym("y", 16)
		n := 0
		for i := 0; i < 3; i++ {
			if ctx.Branch(sym.EqConst(sym.Extract(x, i, i), 1)) {
				n++
			}
		}
		if ctx.Branch(sym.Eq(sym.Mul(x, y), sym.Const(16, 12345))) {
			ctx.Emit("hit")
		} else {
			ctx.Emit(n)
		}
	}
	res := (&Engine{Workers: 4, ClauseSharing: true}).Run(h)
	if len(res.Paths) == 0 {
		t.Fatal("no paths explored")
	}
	if res.ClauseExports == 0 {
		t.Fatal("clause sharing on, but no clauses were ever exported")
	}
	if res.ClauseImports == 0 {
		t.Fatal("clauses were exported but none survived import validation")
	}
	t.Logf("clause exchange: %d exported, %d imported over %d paths",
		res.ClauseExports, res.ClauseImports, len(res.Paths))

	// Sharing off must report zero traffic.
	res = (&Engine{Workers: 4}).Run(h)
	if res.ClauseExports != 0 || res.ClauseImports != 0 {
		t.Fatalf("sharing off but traffic reported: %d/%d", res.ClauseExports, res.ClauseImports)
	}
}

// TestClauseSharingRepeatedRuns hammers the shared-space path under -race:
// repeated parallel explorations with sharing on must all agree with the
// sequential unshared run.
func TestClauseSharingRepeatedRuns(t *testing.T) {
	h := func(ctx *Context) {
		x := ctx.NewSym("x", 16)
		n := 0
		for i := 0; i < 8; i++ {
			if ctx.Branch(sym.EqConst(sym.Extract(x, i, i), 1)) {
				n++
			}
		}
		ctx.Emit(n)
	}
	want := fingerprint((&Engine{Workers: 1, WantModels: true}).Run(h))
	runs := 4
	if testing.Short() {
		runs = 2
	}
	for i := 0; i < runs; i++ {
		res := (&Engine{Workers: 8, WantModels: true, ClauseSharing: true}).Run(h)
		if got := fingerprint(res); got != want {
			t.Fatalf("run %d diverged from sequential:\n--- want\n%s--- got\n%s", i, want, got)
		}
	}
}
