package symexec

import (
	"math/rand"

	"github.com/soft-testing/soft/internal/coverage"
)

// Strategy orders pending paths. Pop receives the cumulative coverage so
// far (nil when the engine runs without a coverage universe) so that
// coverage-guided strategies can prioritize uncovered branch directions.
//
// The paper (§4.1) observes that because SOFT drives exploration to
// exhaustion, the choice of strategy has little effect on the final result;
// it matters for how quickly coverage accumulates and for partial runs. The
// strategies here mirror the ones Cloud9 offers.
type Strategy interface {
	Push(*workItem)
	Pop(cov *coverage.Set) (*workItem, bool)
	Len() int
	Name() string
}

// WorkerStrategy is a Strategy that can spawn independent per-worker
// instances for parallel exploration: worker w orders its local frontier
// with ForWorker(w) while the engine's shared pool handles stealing. All
// built-in strategies implement it. Randomized strategies derive a
// deterministic per-worker seed, keeping each worker's local order
// reproducible (the final result order is canonical regardless — see
// doc.go).
type WorkerStrategy interface {
	Strategy
	ForWorker(w int) Strategy
}

// workerSeed spreads a base seed across workers.
func workerSeed(seed int64, w int) int64 { return seed + int64(w)*0x9e3779b9 }

// dfs explores depth-first (LIFO).
type dfs struct{ items []*workItem }

// NewDFS returns a depth-first (LIFO) strategy.
func NewDFS() Strategy { return &dfs{} }

func (s *dfs) Name() string           { return "dfs" }
func (s *dfs) ForWorker(int) Strategy { return NewDFS() }
func (s *dfs) Len() int          { return len(s.items) }
func (s *dfs) Push(it *workItem) { s.items = append(s.items, it) }
func (s *dfs) Pop(*coverage.Set) (*workItem, bool) {
	if len(s.items) == 0 {
		return nil, false
	}
	it := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return it, true
}

// bfs explores breadth-first (FIFO).
type bfs struct {
	items []*workItem
	head  int
}

// NewBFS returns a breadth-first (FIFO) strategy.
func NewBFS() Strategy { return &bfs{} }

func (s *bfs) Name() string           { return "bfs" }
func (s *bfs) ForWorker(int) Strategy { return NewBFS() }
func (s *bfs) Len() int          { return len(s.items) - s.head }
func (s *bfs) Push(it *workItem) { s.items = append(s.items, it) }
func (s *bfs) Pop(*coverage.Set) (*workItem, bool) {
	if s.head >= len(s.items) {
		return nil, false
	}
	it := s.items[s.head]
	s.items[s.head] = nil
	s.head++
	if s.head > 64 && s.head*2 > len(s.items) {
		s.items = append([]*workItem(nil), s.items[s.head:]...)
		s.head = 0
	}
	return it, true
}

// random picks a pending path uniformly at random (deterministic seed).
type random struct {
	items []*workItem
	rng   *rand.Rand
	seed  int64
}

// NewRandom returns a random-path strategy with the given seed. The same
// seed always yields the same exploration order.
func NewRandom(seed int64) Strategy {
	return &random{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

func (s *random) Name() string             { return "random" }
func (s *random) ForWorker(w int) Strategy { return NewRandom(workerSeed(s.seed, w)) }
func (s *random) Len() int          { return len(s.items) }
func (s *random) Push(it *workItem) { s.items = append(s.items, it) }
func (s *random) Pop(*coverage.Set) (*workItem, bool) {
	if len(s.items) == 0 {
		return nil, false
	}
	i := s.rng.Intn(len(s.items))
	it := s.items[i]
	last := len(s.items) - 1
	s.items[i] = s.items[last]
	s.items = s.items[:last]
	return it, true
}

// covOpt prefers pending paths whose flipped branch direction is not yet
// covered, falling back to FIFO order.
type covOpt struct {
	items []*workItem
}

// NewCoverageOptimized returns a strategy that prioritizes paths leading
// into uncovered branch directions.
func NewCoverageOptimized() Strategy { return &covOpt{} }

func (s *covOpt) Name() string           { return "cov-opt" }
func (s *covOpt) ForWorker(int) Strategy { return NewCoverageOptimized() }
func (s *covOpt) Len() int          { return len(s.items) }
func (s *covOpt) Push(it *workItem) { s.items = append(s.items, it) }
func (s *covOpt) Pop(cov *coverage.Set) (*workItem, bool) {
	if len(s.items) == 0 {
		return nil, false
	}
	pick := 0
	if cov != nil {
		for i, it := range s.items {
			if it.site >= 0 && !covHasDir(cov, it.site, it.dir) {
				pick = i
				break
			}
		}
	}
	it := s.items[pick]
	s.items = append(s.items[:pick], s.items[pick+1:]...)
	return it, true
}

// interleaved alternates between random path selection and
// coverage-optimized selection — the Cloud9 default strategy the paper uses
// (§4.1: "an interleaving of a random path choice and a strategy that aims
// to improve coverage").
type interleaved struct {
	rnd  *random
	cov  *covOpt
	flip bool
}

// NewInterleaved returns the Cloud9-style interleaved strategy.
func NewInterleaved(seed int64) Strategy {
	return &interleaved{
		rnd: &random{rng: rand.New(rand.NewSource(seed)), seed: seed},
		cov: &covOpt{},
	}
}

func (s *interleaved) Name() string { return "interleaved" }
func (s *interleaved) ForWorker(w int) Strategy {
	return NewInterleaved(workerSeed(s.rnd.seed, w))
}

// Len reports the single backing store's length. (s.rnd.items is a stale
// alias of it between random pops and must not be counted: the parallel
// engine's rebalance and leftover accounting rely on an exact Len.)
func (s *interleaved) Len() int { return len(s.cov.items) }
func (s *interleaved) Push(it *workItem) {
	// Keep one backing store; alternate which view pops.
	s.cov.items = append(s.cov.items, it)
}
func (s *interleaved) Pop(cov *coverage.Set) (*workItem, bool) {
	if len(s.cov.items) == 0 {
		return nil, false
	}
	s.flip = !s.flip
	if s.flip {
		return s.cov.Pop(cov)
	}
	// Random pop over the shared store.
	s.rnd.items = s.cov.items
	it, ok := s.rnd.Pop(cov)
	s.cov.items = s.rnd.items
	return it, ok
}

// covHasDir reports whether the direction dir of branch site is covered.
func covHasDir(cov *coverage.Set, site coverage.BranchID, dir bool) bool {
	// coverage.Set does not export per-direction lookup; probe via a clone
	// merge trick is wasteful, so we extend coverage with a query method.
	return cov.BranchDirCovered(site, dir)
}
