package symexec

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/soft-testing/soft/internal/bitblast"
	"github.com/soft-testing/soft/internal/coverage"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/sym"
)

// Handler is the program under test: a deterministic function of the
// symbolic inputs it creates via Context.NewSym and the decisions returned
// by Context.Branch.
type Handler func(ctx *Context)

// abortKind is carried by the sentinel panic that unwinds a path early.
type abortKind int

const (
	abortCrash abortKind = iota
	abortInfeasible
	abortDepth
)

type abortPanic struct {
	kind abortKind
	msg  string
}

// pathSolver is the constraint back end a Context drives: a fresh
// bitblast.Blaster per path attempt (the classic mode), or a per-worker
// bitblast.Session that keeps CNF, learned clauses, and heuristics across
// the worker's paths (Engine.Incremental). Both return identical answers
// and identical canonical models, so the choice never changes a Result.
type pathSolver interface {
	Assert(e *sym.Expr)
	SolveAssuming(es ...*sym.Expr) bool
	Solve() bool
	CanonicalModel() sym.Assignment
}

// pathCounters accumulates one worker's solver-facing counters. Owned by
// the executing worker; no atomics needed.
type pathCounters struct {
	branchQueries int64
	fullSolves    int64 // from-scratch solves on per-path blasters
	mergeHits     int64 // frontier queries answered by the merge memo
}

// Context is the per-path execution context handed to the Handler. It is
// valid only for the duration of one handler invocation. A Context holds no
// reference to locked engine state: forks go through the enqueue callback
// and feasibility queries run against the worker-private solver, so
// parallel workers execute paths without locking on the hot path (the
// merge memo, consulted only at frontier queries, is the one exception).
type Context struct {
	maxDepth  int
	enqueue   func(*workItem)
	counters  *pathCounters
	blaster   pathSolver
	sess      *bitblast.Session // non-nil iff blaster is the worker's session
	merge     *mergeMemo        // non-nil iff state merging is on
	lastDec   int               // pc index of the newest branch-decision conjunct, -1 if none
	decisions []bool            // prescribed prefix (replay), then grown by new decisions
	sites     []coverage.BranchID
	depth     int // next decision index
	pc        []*sym.Expr
	outputs   []any
	cov       *coverage.Set
	inputs    map[string]*sym.Expr
	crashed   bool
	crashMsg  string
}

// NewSym creates (or returns, when re-executed) the symbolic input variable
// with the given name and width. Handlers must create inputs
// deterministically: the same names in the same order on every run.
func (c *Context) NewSym(name string, w int) *sym.Expr {
	if v, ok := c.inputs[name]; ok {
		if v.Width() != w {
			panic(fmt.Sprintf("symexec: input %q redeclared with width %d != %d", name, w, v.Width()))
		}
		return v
	}
	v := sym.Var(name, w)
	c.inputs[name] = v
	return v
}

// Inputs returns the symbolic input variables created so far, keyed by name.
func (c *Context) Inputs() map[string]*sym.Expr { return c.inputs }

// Emit records an output event on the current path (an OpenFlow message or
// data plane packet the agent sent, in SOFT's usage).
func (c *Context) Emit(ev any) { c.outputs = append(c.outputs, ev) }

// Cover marks a coverage block as executed on this path.
func (c *Context) Cover(b coverage.BlockID) {
	if c.cov != nil {
		c.cov.CoverBlock(b)
	}
}

// Crash aborts the current path, recording that the agent terminated
// abnormally (the paper's "OpenFlow agent terminates with an error" class of
// findings). The crash is externally observable behavior, so it becomes part
// of the path's result.
func (c *Context) Crash(msg string) {
	c.crashed = true
	c.crashMsg = msg
	panic(abortPanic{kind: abortCrash, msg: msg})
}

// Assume constrains the path without forking. The harness uses it to pin
// structured-input invariants (§3.2.1: concrete message type and length
// fields). If the assumption contradicts the path condition the path is
// abandoned as infeasible.
func (c *Context) Assume(cond *sym.Expr) {
	cond = sym.Simplify(cond)
	if cond.IsTrue() {
		return
	}
	if cond.IsFalse() {
		panic(abortPanic{kind: abortInfeasible, msg: "assumption is false"})
	}
	if c.sess == nil {
		c.counters.fullSolves++
	}
	if !c.blaster.SolveAssuming(cond) {
		panic(abortPanic{kind: abortInfeasible, msg: "assumption contradicts path condition"})
	}
	c.pc = append(c.pc, cond)
	c.blaster.Assert(cond)
}

// Branch evaluates a two-way branch on cond. Concrete conditions do not
// fork. Symbolic conditions consult the decision prefix (replay) or the
// solver (exploration); when both arms are feasible the unexplored arm is
// enqueued with the engine's search strategy.
func (c *Context) Branch(cond *sym.Expr) bool {
	return c.BranchSite(-1, cond)
}

// BranchSite is Branch with a coverage branch site attached.
func (c *Context) BranchSite(site coverage.BranchID, cond *sym.Expr) bool {
	cond = sym.Simplify(cond)
	if cond.IsTrue() || cond.IsFalse() {
		taken := cond.IsTrue()
		c.coverBranch(site, taken)
		return taken
	}

	idx := c.depth
	c.depth++
	if c.maxDepth > 0 && idx >= c.maxDepth {
		panic(abortPanic{kind: abortDepth, msg: "maximum branch depth exceeded"})
	}

	if idx < len(c.decisions) {
		// Replay: the prefix was checked feasible when enqueued.
		taken := c.decisions[idx]
		c.take(site, cond, taken)
		return taken
	}

	// Frontier: decide which arms are feasible.
	c.counters.branchQueries++
	satTrue := c.branchFeasible(cond)
	var satFalse bool
	if !satTrue {
		// The path condition is feasible, so at least one arm is.
		satFalse = true
	} else {
		satFalse = c.branchFeasible(sym.LNot(cond))
	}

	switch {
	case satTrue && satFalse:
		// Fork: continue down true, enqueue false.
		alt := make([]bool, idx+1)
		copy(alt, c.decisions)
		alt[idx] = false
		c.enqueue(&workItem{decisions: alt, site: site, dir: false})
		c.decisions = append(c.decisions, true)
		c.take(site, cond, true)
		return true
	case satTrue:
		c.decisions = append(c.decisions, true)
		c.take(site, cond, true)
		return true
	default:
		c.decisions = append(c.decisions, false)
		c.take(site, cond, false)
		return false
	}
}

// branchFeasible decides one frontier arm's feasibility. With state merging
// the exact query is first relaxed by dropping the newest branch-decision
// conjunct — the pivot of a diamond: sibling paths that differ only in that
// decision and meet again at the same frontier node issue the *same*
// relaxed query, which is exactly the ite/or-merged constraint of the
// diamond. An unsatisfiable relaxed query proves both siblings' exact
// queries unsatisfiable (it is strictly weaker), so the verdict is memoized
// engine-wide and the sibling's arm dies without touching the solver. A
// satisfiable relaxed query proves nothing and falls through to the exact
// solve, so answers — and therefore Results — are identical with merging
// on or off.
func (c *Context) branchFeasible(q *sym.Expr) bool {
	if c.merge != nil && c.sess != nil && c.lastDec >= 0 {
		keep := make([]*sym.Expr, 0, len(c.pc)-1)
		keep = append(keep, c.pc[:c.lastDec]...)
		keep = append(keep, c.pc[c.lastDec+1:]...)
		hash, key := mergeKey(keep, q)
		if c.merge.knownUnsat(hash, key) {
			c.counters.mergeHits++
			return false
		}
		if !c.sess.SolveSubset(keep, q) {
			c.merge.recordUnsat(hash, key)
			return false
		}
	}
	if c.sess == nil {
		c.counters.fullSolves++
	}
	return c.blaster.SolveAssuming(q)
}

// take commits a branch direction: extends the path condition, the
// incremental encoding, and coverage.
func (c *Context) take(site coverage.BranchID, cond *sym.Expr, taken bool) {
	eff := cond
	if !taken {
		eff = sym.LNot(cond)
	}
	c.pc = append(c.pc, eff)
	c.lastDec = len(c.pc) - 1
	c.blaster.Assert(eff)
	c.coverBranch(site, taken)
}

func (c *Context) coverBranch(site coverage.BranchID, taken bool) {
	if c.cov != nil && site >= 0 {
		c.cov.CoverBranch(site, taken)
	}
}

// PathCondition returns the conjunction of constraints accumulated so far.
func (c *Context) PathCondition() *sym.Expr { return sym.LAnd(c.pc...) }

// Path is one completed execution path.
type Path struct {
	// ID is the path's index in canonical decision-prefix order (see
	// Decisions): IDs are assigned after exploration by sorting the decision
	// vectors lexicographically (false < true), so the same handler always
	// yields the same IDs regardless of search strategy or worker count.
	ID       int
	PC       []*sym.Expr // conjuncts in branch order
	Outputs  []any
	Cov      *coverage.Set
	Crashed  bool
	CrashMsg string
	// Model is a concrete input satisfying PC (a ready-made test case),
	// populated when Engine.WantModels is set.
	Model sym.Assignment
	// Branches is the number of symbolic decisions on the path.
	Branches int
	// Decisions is the branch-decision vector identifying the path in the
	// execution tree. Completed paths are prefix-free, so the vector is a
	// unique canonical key.
	Decisions []bool
}

// Condition returns the path condition as a single expression.
func (p *Path) Condition() *sym.Expr { return sym.LAnd(p.PC...) }

// ConstraintSize returns the paper's Table 2 metric: the number of boolean
// operations in the path condition.
func (p *Path) ConstraintSize() int { return p.Condition().Size() }

// Result is the outcome of exploring a handler exhaustively (or up to the
// engine's limits). Paths are in canonical decision-prefix order, so for
// exhaustive runs the Result is identical whatever the search strategy or
// worker count.
type Result struct {
	Paths []*Path
	// Cov is cumulative coverage over all explored paths.
	Cov *coverage.Set
	// Inputs is the union of symbolic inputs the handler declared.
	Inputs map[string]*sym.Expr
	// Elapsed is wall-clock exploration time (the paper's "CPU time"
	// column; with Workers > 1 the CPU time is up to Workers × Elapsed).
	Elapsed time.Duration
	// Infeasible counts abandoned paths (contradictory Assume).
	Infeasible int
	// DepthTruncated counts paths cut by MaxDepth.
	DepthTruncated int
	// PathsTruncated reports whether exploration stopped early — MaxPaths
	// fired or the run's context was cancelled — so Paths is a partial set.
	PathsTruncated bool
	// Cancelled reports that the context passed to RunContext was cancelled
	// (or its deadline expired) before the execution tree was exhausted.
	Cancelled bool
	// BranchQueries counts frontier feasibility decisions.
	BranchQueries int64
	// ClauseExports/ClauseImports count learned clauses published to and
	// adopted from the inter-path exchange (zero unless ClauseSharing).
	ClauseExports int64
	ClauseImports int64
	// AssumptionSolves counts satisfiability decisions served by incremental
	// sessions (assumption-stack solves); FullSolves counts decisions that
	// paid a from-scratch per-path solver. Exactly one of the two grows per
	// engine-level query, depending on Engine.Incremental.
	AssumptionSolves int64
	FullSolves       int64
	// ConstraintsReused counts path conjuncts served from a session's
	// already-encoded activation cache instead of being re-bitblasted.
	ConstraintsReused int64
	// MergeHits counts frontier feasibility queries answered by the
	// state-merging memo without any solving (zero unless Engine.Merge).
	MergeHits int64
}

// AvgConstraintSize returns the mean constraint size across paths.
func (r *Result) AvgConstraintSize() float64 {
	if len(r.Paths) == 0 {
		return 0
	}
	var sum int64
	for _, p := range r.Paths {
		sum += int64(p.ConstraintSize())
	}
	return float64(sum) / float64(len(r.Paths))
}

// MaxConstraintSize returns the largest constraint size across paths.
func (r *Result) MaxConstraintSize() int {
	m := 0
	for _, p := range r.Paths {
		if s := p.ConstraintSize(); s > m {
			m = s
		}
	}
	return m
}

// workItem is a pending path: a decision prefix ending in a flipped branch.
type workItem struct {
	decisions []bool
	site      coverage.BranchID // site of the flipped decision
	dir       bool              // direction the flipped decision takes
}

// Engine explores all paths of a Handler.
type Engine struct {
	// Solver is the constraint-solving façade reserved for engine-level
	// queries. Path feasibility and model extraction run on path-private
	// bitblast instances instead, so the engine never contends on it; a nil
	// Solver gets a fresh one. See solver.Solver's concurrency notes.
	Solver *solver.Solver
	// Strategy orders path exploration; nil means NewInterleaved(1), the
	// Cloud9 default strategy per the paper's §4.1. Parallel exploration
	// needs per-worker frontier instances, so a non-nil Strategy that does
	// not implement WorkerStrategy (the built-in strategies all do) forces
	// the run sequential — the configured search order is honored exactly
	// rather than silently replaced.
	Strategy Strategy
	// MaxPaths caps explored paths; 0 means unlimited. The paper notes
	// SOFT can work with partial path sets. When the cap truncates a run,
	// the set of explored paths depends on strategy order (and, with
	// Workers > 1, on scheduling) unless CanonicalCut makes the truncation
	// deterministic; only exhaustive and CanonicalCut runs are canonical.
	MaxPaths int
	// CanonicalCut makes MaxPaths truncation canonical: the run keeps the
	// MaxPaths canonically smallest completed paths (lexicographic
	// decision-prefix order) instead of the first MaxPaths that happened to
	// complete, and prunes pending subtrees that can no longer contribute.
	// Truncated results then serialize to the same bytes for every worker
	// count and across distributed shard layouts. In a truncated canonical
	// run Result.Cov covers exactly the kept paths (attempts that were
	// pruned or discarded are schedule-dependent and must not leak into the
	// result), and the Infeasible/DepthTruncated/BranchQueries counters
	// remain approximate. Ignored when MaxPaths is 0. See doc.go.
	CanonicalCut bool
	// Prefix seeds exploration at the subtree below the given branch-decision
	// prefix instead of the execution tree's root: the initial path replays
	// the prefix and exploration forks only beyond it. The prefix must be a
	// feasible decision prefix of the handler's tree (distributed shards use
	// prefixes recorded at real fork points, which are feasible by
	// construction). Completed paths carry the full decision vector including
	// the prefix, so results from disjoint subtrees merge canonically.
	Prefix []bool
	// ShardSink, when set, diverts every forked work item whose decision
	// vector is longer than ShardDepth to the sink instead of the frontier:
	// the run explores (fully) only the paths reachable through prefixes of
	// length <= ShardDepth and hands each diverted prefix — the root of an
	// unexplored subtree — to the caller. The distributed coordinator uses
	// this to split the frontier: diverted prefixes partition the unexplored
	// tree, so exploring each of them with Prefix set and merging the results
	// with the local paths reconstructs exactly the full run. A run with
	// ShardSink is forced sequential; the sink owns the prefix slices it
	// receives.
	ShardDepth int
	ShardSink  func(prefix []bool)
	// MaxDepth caps symbolic decisions per path; 0 means unlimited.
	MaxDepth int
	// WantModels extracts a satisfying model per completed path.
	WantModels bool
	// CovMap, when set, allocates per-path coverage sets over this universe.
	CovMap *coverage.Map
	// Workers is the number of parallel exploration workers. 0 means
	// GOMAXPROCS; 1 forces sequential exploration. Exhaustive runs produce
	// identical Results for every worker count (see doc.go).
	Workers int
	// ClauseSharing wires every path's SAT core into one bounded
	// learned-clause exchange: input variables get canonical indices from a
	// shared bitblast.Space, short learned clauses (≤ 2 literals over shared
	// inputs) are published to a lock-free ring, and importers adopt a
	// candidate only after proving it implied by their own clause database.
	// Sharing therefore never changes an answer, and witness models are
	// canonical (see bitblast.CanonicalModel), so exhaustive Results stay
	// byte-identical with sharing on or off — it only shortcuts repeated
	// conflict work across structurally similar paths. See doc.go.
	ClauseSharing bool
	// Incremental gives each worker one persistent bitblast.Session instead
	// of a fresh blaster per path attempt: a path's conjuncts are encoded
	// once, guarded by activation literals, and a child path's solve pushes
	// only its new branch constraint as an assumption — CNF, learned
	// clauses, and VSIDS activity carry over across the worker's whole
	// subtree. Answers and canonical witness models are identical either
	// way (see bitblast.Session), so exhaustive Results are byte-identical
	// with the mode on or off; it only changes how fast the tree burns
	// down. See doc.go.
	Incremental bool
	// Merge enables veritesting-style diamond state merging: frontier
	// feasibility queries are first relaxed by dropping the newest branch
	// decision, and relaxed-unsatisfiable verdicts are memoized engine-wide
	// so the sibling path's mirrored query is answered without solving.
	// Answer-preserving (see Context.branchFeasible); implies Incremental.
	Merge bool
	// Progress, when set, is invoked after each completed path with the
	// cumulative number of paths kept so far. With Workers > 1 it is called
	// from worker goroutines and must be safe for concurrent use; counts are
	// monotonically increasing but may arrive out of order. The callback
	// must not retain or mutate engine state — it exists to drive progress
	// reporting for long runs and has no effect on exploration.
	Progress func(pathsDone int)

	queue    Strategy
	counters pathCounters
}

// Run explores h and returns all completed paths in canonical
// decision-prefix order.
func (e *Engine) Run(h Handler) *Result {
	return e.RunContext(context.Background(), h)
}

// RunContext is Run with cancellation: when ctx is cancelled (or its
// deadline expires) exploration stops at the next path boundary and the
// partial result comes back with Cancelled and PathsTruncated set. Paths
// completed before the cancellation are kept and canonicalized as usual;
// only exhaustive (non-cancelled, non-truncated) runs are byte-identical
// across worker counts.
func (e *Engine) RunContext(ctx context.Context, h Handler) *Result {
	if e.Solver == nil {
		e.Solver = solver.New()
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if e.Strategy != nil {
		if _, ok := e.Strategy.(WorkerStrategy); !ok {
			// A custom strategy without per-worker derivation cannot be
			// split across frontiers; honor its exact order sequentially.
			workers = 1
		}
	}
	if e.ShardSink != nil {
		// Frontier splitting is a coordinator-side operation over a shallow
		// tree slice; keep it sequential so the sink needs no locking.
		workers = 1
	}

	res := &Result{Inputs: make(map[string]*sym.Expr)}
	if e.CovMap != nil {
		res.Cov = e.CovMap.NewSet()
	}
	var share *bitblast.Space
	if e.ClauseSharing {
		// One space per run: canonical input numbering plus the clause ring.
		// Sequential runs share too — clauses learned on one path shortcut
		// conflicts on later paths of the same handler.
		share = bitblast.NewSpace(0)
	}
	var merge *mergeMemo
	if e.Merge {
		merge = newMergeMemo()
	}

	start := time.Now()
	if workers == 1 {
		e.runSequential(ctx, h, share, merge, res)
	} else {
		e.runParallel(ctx, h, workers, share, merge, res)
	}
	if share != nil {
		st := share.Stats()
		res.ClauseExports = st.Exported
		res.ClauseImports = st.Imported
	}
	canonicalizePaths(res.Paths)
	if res.Cancelled {
		res.PathsTruncated = true
	}
	res.Elapsed = time.Since(start)
	return res
}

// incremental reports whether workers run persistent sessions (Merge needs
// droppable per-conjunct assumptions, so it implies Incremental).
func (e *Engine) incremental() bool { return e.Incremental || e.Merge }

// newContext builds the execution context for one path attempt. A non-nil
// sess is the worker's persistent incremental session, reset for the new
// path; otherwise the path gets a fresh blaster. With clause sharing either
// back end joins the run's shared space (a nil share degrades to private
// numbering).
func (e *Engine) newContext(it *workItem, enqueue func(*workItem), counters *pathCounters, sess *bitblast.Session, share *bitblast.Space, merge *mergeMemo) *Context {
	ctx := &Context{
		maxDepth:  e.MaxDepth,
		enqueue:   enqueue,
		counters:  counters,
		merge:     merge,
		lastDec:   -1,
		decisions: it.decisions,
		inputs:    make(map[string]*sym.Expr),
	}
	if sess != nil {
		sess.Reset()
		ctx.blaster, ctx.sess = sess, sess
	} else {
		ctx.blaster = bitblast.NewShared(share)
	}
	if e.CovMap != nil {
		ctx.cov = e.CovMap.NewSet()
	}
	return ctx
}

// addSolveCounters folds one worker's counters (and its session's, when
// incremental) into the result.
func addSolveCounters(res *Result, c *pathCounters, sess *bitblast.Session) {
	res.BranchQueries += c.branchQueries
	res.FullSolves += c.fullSolves
	res.MergeHits += c.mergeHits
	if sess != nil {
		res.AssumptionSolves += sess.AssumptionSolves
		res.ConstraintsReused += sess.ConstraintsReused
	}
}

// completePath turns a finished context into a Path (with model extraction
// when requested).
func (e *Engine) completePath(ctx *Context) *Path {
	p := &Path{
		PC:        ctx.pc,
		Outputs:   ctx.outputs,
		Cov:       ctx.cov,
		Crashed:   ctx.crashed,
		CrashMsg:  ctx.crashMsg,
		Branches:  ctx.depth,
		Decisions: ctx.decisions,
	}
	if e.WantModels {
		if ctx.sess == nil {
			ctx.counters.fullSolves++
		}
		if ctx.blaster.Solve() {
			// Canonical extraction keeps the model a pure function of the
			// path condition: the same path yields the same witness bytes
			// whatever the worker count, encoding layout, or clause imports
			// did to the CDCL search trajectory.
			p.Model = ctx.blaster.CanonicalModel()
		}
	}
	return p
}

// runSequential is the single-threaded exploration loop. cancel is the
// run's context.Context (named to keep ctx free for the per-path execution
// Context).
func (e *Engine) runSequential(cancel context.Context, h Handler, share *bitblast.Space, merge *mergeMemo, res *Result) {
	e.queue = e.Strategy
	if e.queue == nil {
		e.queue = NewInterleaved(1)
	}
	e.counters = pathCounters{}
	var sess *bitblast.Session
	if e.incremental() {
		sess = bitblast.NewSession(share)
	}
	cut := e.newCanonCut()

	enqueue := func(it *workItem) {
		if e.ShardSink != nil && len(it.decisions) > e.ShardDepth {
			e.ShardSink(it.decisions)
			return
		}
		e.queue.Push(it)
	}
	e.queue.Push(e.rootItem())
	completed := 0
	for e.queue.Len() > 0 {
		if cancel.Err() != nil {
			res.Cancelled = true
			break
		}
		if cut == nil && e.MaxPaths > 0 && len(res.Paths) >= e.MaxPaths {
			res.PathsTruncated = true
			break
		}
		it, ok := e.queue.Pop(res.Cov)
		if !ok {
			break
		}
		if cut != nil && cut.prune(it.decisions) {
			continue
		}
		ctx := e.newContext(it, enqueue, &e.counters, sess, share, merge)
		outcome := runOne(ctx, h)
		for name, v := range ctx.inputs {
			res.Inputs[name] = v
		}
		switch outcome {
		case pathCompleted, pathCrashed:
			p := e.completePath(ctx)
			if cut != nil {
				cut.admit(p)
			} else {
				res.Paths = append(res.Paths, p)
			}
			if res.Cov != nil {
				res.Cov.Merge(ctx.cov)
			}
			completed++
			if e.Progress != nil {
				e.Progress(completed)
			}
		case pathInfeasible:
			res.Infeasible++
		case pathDepthTruncated:
			res.DepthTruncated++
			if res.Cov != nil {
				res.Cov.Merge(ctx.cov)
			}
		}
	}
	addSolveCounters(res, &e.counters, sess)
	e.applyCanonCut(cut, res)
}

// newCanonCut returns the canonical-truncation tracker for this run, or nil
// when the run is not canonically capped.
func (e *Engine) newCanonCut() *canonCut {
	if e.CanonicalCut && e.MaxPaths > 0 {
		return newCanonCut(e.MaxPaths)
	}
	return nil
}

// rootItem is the initial work item: the tree root, or the subtree root
// when the engine is seeded with a decision prefix.
func (e *Engine) rootItem() *workItem {
	return &workItem{decisions: append([]bool(nil), e.Prefix...), site: -1}
}

// applyCanonCut moves a canonically truncated run's kept set into the
// result. A truncated cut rebuilds coverage from the kept paths alone:
// which other attempts executed before pruning kicked in is
// schedule-dependent, and canonical truncation promises a result that is a
// pure function of the execution tree.
func (e *Engine) applyCanonCut(cut *canonCut, res *Result) {
	if cut == nil {
		return
	}
	kept, truncated := cut.paths()
	res.Paths = kept
	if !truncated {
		return
	}
	res.PathsTruncated = true
	if e.CovMap != nil {
		res.Cov = e.CovMap.NewSet()
		for _, p := range kept {
			res.Cov.Merge(p.Cov)
		}
	}
}

// LessDecisions reports whether decision vector a sorts before b in
// canonical order: lexicographic with false < true, a proper prefix before
// its extensions. This is the order path IDs are assigned in, the order
// distributed shard results are merged in, and the order canonical MaxPaths
// truncation cuts at. It is subtree-monotone: all descendants of a prefix
// sort after it, and they compare to vectors outside the subtree exactly as
// the prefix itself does.
func LessDecisions(a, b []bool) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return !a[i]
		}
	}
	return len(a) < len(b)
}

// canonicalizePaths sorts paths into canonical decision-prefix order and
// assigns IDs, making results independent of exploration order.
func canonicalizePaths(paths []*Path) {
	sort.Slice(paths, func(i, j int) bool {
		return LessDecisions(paths[i].Decisions, paths[j].Decisions)
	})
	for i, p := range paths {
		p.ID = i
	}
}

type pathOutcome int

const (
	pathCompleted pathOutcome = iota
	pathCrashed
	pathInfeasible
	pathDepthTruncated
)

func runOne(ctx *Context, h Handler) (out pathOutcome) {
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(abortPanic)
			if !ok {
				panic(r) // genuine bug in handler or engine
			}
			switch ab.kind {
			case abortCrash:
				out = pathCrashed
			case abortInfeasible:
				out = pathInfeasible
			case abortDepth:
				out = pathDepthTruncated
			}
		}
	}()
	h(ctx)
	return pathCompleted
}
