// Package symexec implements the symbolic execution engine at the core of
// SOFT's first phase. It substitutes for Cloud9 in the paper's prototype:
// given a deterministic handler (the OpenFlow agent model driven by the test
// harness), it explores every feasible execution path, maintaining a path
// condition per path and recording the outputs the agent produced along it.
//
// The engine uses deterministic re-execution (execution-generated testing):
// a path is identified by the sequence of decisions taken at branches whose
// condition depends on symbolic input. To explore an alternative, the engine
// re-runs the handler from the start, replaying the recorded decision prefix
// and then diverging. Because agents are deterministic functions of the
// branch decisions, replay reconstructs exactly the same execution tree a
// state-forking engine (like Cloud9) would maintain, at the cost of
// re-execution — which is cheap for agent models — and with none of the
// state-snapshotting machinery.
//
// Branch feasibility is decided by the solver package. Each in-flight path
// carries an incrementally built SAT encoding of its path condition, so a
// feasibility query at a branch reuses all the encoding and learned clauses
// accumulated along the path.
package symexec

import (
	"fmt"
	"time"

	"github.com/soft-testing/soft/internal/bitblast"
	"github.com/soft-testing/soft/internal/coverage"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/sym"
)

// Handler is the program under test: a deterministic function of the
// symbolic inputs it creates via Context.NewSym and the decisions returned
// by Context.Branch.
type Handler func(ctx *Context)

// abortKind is carried by the sentinel panic that unwinds a path early.
type abortKind int

const (
	abortCrash abortKind = iota
	abortInfeasible
	abortDepth
)

type abortPanic struct {
	kind abortKind
	msg  string
}

// Context is the per-path execution context handed to the Handler. It is
// valid only for the duration of one handler invocation.
type Context struct {
	eng       *Engine
	blaster   *bitblast.Blaster
	decisions []bool // prescribed prefix (replay), then grown by new decisions
	sites     []coverage.BranchID
	depth     int // next decision index
	pc        []*sym.Expr
	outputs   []any
	cov       *coverage.Set
	inputs    map[string]*sym.Expr
	crashed   bool
	crashMsg  string
}

// NewSym creates (or returns, when re-executed) the symbolic input variable
// with the given name and width. Handlers must create inputs
// deterministically: the same names in the same order on every run.
func (c *Context) NewSym(name string, w int) *sym.Expr {
	if v, ok := c.inputs[name]; ok {
		if v.Width() != w {
			panic(fmt.Sprintf("symexec: input %q redeclared with width %d != %d", name, w, v.Width()))
		}
		return v
	}
	v := sym.Var(name, w)
	c.inputs[name] = v
	return v
}

// Inputs returns the symbolic input variables created so far, keyed by name.
func (c *Context) Inputs() map[string]*sym.Expr { return c.inputs }

// Emit records an output event on the current path (an OpenFlow message or
// data plane packet the agent sent, in SOFT's usage).
func (c *Context) Emit(ev any) { c.outputs = append(c.outputs, ev) }

// Cover marks a coverage block as executed on this path.
func (c *Context) Cover(b coverage.BlockID) {
	if c.cov != nil {
		c.cov.CoverBlock(b)
	}
}

// Crash aborts the current path, recording that the agent terminated
// abnormally (the paper's "OpenFlow agent terminates with an error" class of
// findings). The crash is externally observable behavior, so it becomes part
// of the path's result.
func (c *Context) Crash(msg string) {
	c.crashed = true
	c.crashMsg = msg
	panic(abortPanic{kind: abortCrash, msg: msg})
}

// Assume constrains the path without forking. The harness uses it to pin
// structured-input invariants (§3.2.1: concrete message type and length
// fields). If the assumption contradicts the path condition the path is
// abandoned as infeasible.
func (c *Context) Assume(cond *sym.Expr) {
	cond = sym.Simplify(cond)
	if cond.IsTrue() {
		return
	}
	if cond.IsFalse() {
		panic(abortPanic{kind: abortInfeasible, msg: "assumption is false"})
	}
	if !c.blaster.SolveAssuming(cond) {
		panic(abortPanic{kind: abortInfeasible, msg: "assumption contradicts path condition"})
	}
	c.pc = append(c.pc, cond)
	c.blaster.Assert(cond)
}

// Branch evaluates a two-way branch on cond. Concrete conditions do not
// fork. Symbolic conditions consult the decision prefix (replay) or the
// solver (exploration); when both arms are feasible the unexplored arm is
// enqueued with the engine's search strategy.
func (c *Context) Branch(cond *sym.Expr) bool {
	return c.BranchSite(-1, cond)
}

// BranchSite is Branch with a coverage branch site attached.
func (c *Context) BranchSite(site coverage.BranchID, cond *sym.Expr) bool {
	cond = sym.Simplify(cond)
	if cond.IsTrue() || cond.IsFalse() {
		taken := cond.IsTrue()
		c.coverBranch(site, taken)
		return taken
	}

	idx := c.depth
	c.depth++
	if c.eng.MaxDepth > 0 && idx >= c.eng.MaxDepth {
		panic(abortPanic{kind: abortDepth, msg: "maximum branch depth exceeded"})
	}

	if idx < len(c.decisions) {
		// Replay: the prefix was checked feasible when enqueued.
		taken := c.decisions[idx]
		c.take(site, cond, taken)
		return taken
	}

	// Frontier: decide which arms are feasible.
	c.eng.branchQueries++
	satTrue := c.blaster.SolveAssuming(cond)
	var satFalse bool
	if !satTrue {
		// The path condition is feasible, so at least one arm is.
		satFalse = true
	} else {
		satFalse = c.blaster.SolveAssuming(sym.LNot(cond))
	}

	switch {
	case satTrue && satFalse:
		// Fork: continue down true, enqueue false.
		alt := make([]bool, idx+1)
		copy(alt, c.decisions)
		alt[idx] = false
		c.eng.enqueue(&workItem{decisions: alt, site: site, dir: false})
		c.decisions = append(c.decisions, true)
		c.take(site, cond, true)
		return true
	case satTrue:
		c.decisions = append(c.decisions, true)
		c.take(site, cond, true)
		return true
	default:
		c.decisions = append(c.decisions, false)
		c.take(site, cond, false)
		return false
	}
}

// take commits a branch direction: extends the path condition, the
// incremental encoding, and coverage.
func (c *Context) take(site coverage.BranchID, cond *sym.Expr, taken bool) {
	eff := cond
	if !taken {
		eff = sym.LNot(cond)
	}
	c.pc = append(c.pc, eff)
	c.blaster.Assert(eff)
	c.coverBranch(site, taken)
}

func (c *Context) coverBranch(site coverage.BranchID, taken bool) {
	if c.cov != nil && site >= 0 {
		c.cov.CoverBranch(site, taken)
	}
}

// PathCondition returns the conjunction of constraints accumulated so far.
func (c *Context) PathCondition() *sym.Expr { return sym.LAnd(c.pc...) }

// Path is one completed execution path.
type Path struct {
	ID       int
	PC       []*sym.Expr // conjuncts in branch order
	Outputs  []any
	Cov      *coverage.Set
	Crashed  bool
	CrashMsg string
	// Model is a concrete input satisfying PC (a ready-made test case),
	// populated when Engine.WantModels is set.
	Model sym.Assignment
	// Branches is the number of symbolic decisions on the path.
	Branches int
}

// Condition returns the path condition as a single expression.
func (p *Path) Condition() *sym.Expr { return sym.LAnd(p.PC...) }

// ConstraintSize returns the paper's Table 2 metric: the number of boolean
// operations in the path condition.
func (p *Path) ConstraintSize() int { return p.Condition().Size() }

// Result is the outcome of exploring a handler exhaustively (or up to the
// engine's limits).
type Result struct {
	Paths []*Path
	// Cov is cumulative coverage over all explored paths.
	Cov *coverage.Set
	// Inputs is the union of symbolic inputs the handler declared.
	Inputs map[string]*sym.Expr
	// Elapsed is wall-clock exploration time (the paper's "CPU time"
	// column; our implementation is single-threaded per experiment, as is
	// the paper's).
	Elapsed time.Duration
	// Infeasible counts abandoned paths (contradictory Assume).
	Infeasible int
	// DepthTruncated counts paths cut by MaxDepth.
	DepthTruncated int
	// PathsTruncated reports whether MaxPaths stopped exploration early.
	PathsTruncated bool
	// BranchQueries counts frontier feasibility decisions.
	BranchQueries int64
}

// AvgConstraintSize returns the mean constraint size across paths.
func (r *Result) AvgConstraintSize() float64 {
	if len(r.Paths) == 0 {
		return 0
	}
	var sum int64
	for _, p := range r.Paths {
		sum += int64(p.ConstraintSize())
	}
	return float64(sum) / float64(len(r.Paths))
}

// MaxConstraintSize returns the largest constraint size across paths.
func (r *Result) MaxConstraintSize() int {
	m := 0
	for _, p := range r.Paths {
		if s := p.ConstraintSize(); s > m {
			m = s
		}
	}
	return m
}

// workItem is a pending path: a decision prefix ending in a flipped branch.
type workItem struct {
	decisions []bool
	site      coverage.BranchID // site of the flipped decision
	dir       bool              // direction the flipped decision takes
}

// Engine explores all paths of a Handler.
type Engine struct {
	// Solver is used for branch feasibility and model extraction. A nil
	// Solver gets a fresh one.
	Solver *solver.Solver
	// Strategy orders path exploration; nil means NewInterleaved(1), the
	// Cloud9 default strategy per the paper's §4.1.
	Strategy Strategy
	// MaxPaths caps explored paths; 0 means unlimited. The paper notes
	// SOFT can work with partial path sets.
	MaxPaths int
	// MaxDepth caps symbolic decisions per path; 0 means unlimited.
	MaxDepth int
	// WantModels extracts a satisfying model per completed path.
	WantModels bool
	// CovMap, when set, allocates per-path coverage sets over this universe.
	CovMap *coverage.Map

	queue         Strategy
	branchQueries int64
}

func (e *Engine) enqueue(it *workItem) { e.queue.Push(it) }

// Run explores h and returns all completed paths.
func (e *Engine) Run(h Handler) *Result {
	if e.Solver == nil {
		e.Solver = solver.New()
	}
	e.queue = e.Strategy
	if e.queue == nil {
		e.queue = NewInterleaved(1)
	}
	e.branchQueries = 0

	res := &Result{Inputs: make(map[string]*sym.Expr)}
	if e.CovMap != nil {
		res.Cov = e.CovMap.NewSet()
	}

	start := time.Now()
	e.enqueue(&workItem{decisions: nil, site: -1})
	nextID := 0
	for e.queue.Len() > 0 {
		if e.MaxPaths > 0 && len(res.Paths) >= e.MaxPaths {
			res.PathsTruncated = true
			break
		}
		it, ok := e.queue.Pop(res.Cov)
		if !ok {
			break
		}
		ctx := &Context{
			eng:       e,
			blaster:   bitblast.New(),
			decisions: it.decisions,
			inputs:    make(map[string]*sym.Expr),
		}
		if e.CovMap != nil {
			ctx.cov = e.CovMap.NewSet()
		}
		outcome := runOne(ctx, h)
		for name, v := range ctx.inputs {
			res.Inputs[name] = v
		}
		switch outcome {
		case pathCompleted, pathCrashed:
			p := &Path{
				ID:       nextID,
				PC:       ctx.pc,
				Outputs:  ctx.outputs,
				Cov:      ctx.cov,
				Crashed:  ctx.crashed,
				CrashMsg: ctx.crashMsg,
				Branches: ctx.depth,
			}
			nextID++
			if e.WantModels {
				if ctx.blaster.Solve() {
					p.Model = ctx.blaster.Model()
				}
			}
			res.Paths = append(res.Paths, p)
			if res.Cov != nil {
				res.Cov.Merge(ctx.cov)
			}
		case pathInfeasible:
			res.Infeasible++
		case pathDepthTruncated:
			res.DepthTruncated++
			if res.Cov != nil {
				res.Cov.Merge(ctx.cov)
			}
		}
	}
	res.Elapsed = time.Since(start)
	res.BranchQueries = e.branchQueries
	return res
}

type pathOutcome int

const (
	pathCompleted pathOutcome = iota
	pathCrashed
	pathInfeasible
	pathDepthTruncated
)

func runOne(ctx *Context, h Handler) (out pathOutcome) {
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(abortPanic)
			if !ok {
				panic(r) // genuine bug in handler or engine
			}
			switch ab.kind {
			case abortCrash:
				out = pathCrashed
			case abortInfeasible:
				out = pathInfeasible
			case abortDepth:
				out = pathDepthTruncated
			}
		}
	}()
	h(ctx)
	return pathCompleted
}
