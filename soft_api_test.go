// Tests for the public soft API: the acceptance surface of the package —
// registry lookup, pipeline composition, progress events, context
// cancellation with partial results, and exhaustive-run determinism
// through the public wrapper.
package soft

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestAgentRegistry checks the registry the CLI, examples and report all
// share: the three built-ins resolve (with aliases), and unknown names
// fail with an error listing what is registered.
func TestAgentRegistry(t *testing.T) {
	names := Agents()
	for _, want := range []string{"ref", "modified", "ovs"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry misses built-in agent %q (have %v)", want, names)
		}
	}
	for alias, canonical := range map[string]string{
		"ref": "Reference Switch", "reference": "Reference Switch",
		"ovs": "Open vSwitch", "openvswitch": "Open vSwitch",
		"modified": "Modified Switch", "mod": "Modified Switch",
	} {
		a, err := AgentByName(alias)
		if err != nil {
			t.Fatalf("AgentByName(%q): %v", alias, err)
		}
		if a.Name() != canonical {
			t.Fatalf("AgentByName(%q).Name() = %q, want %q", alias, a.Name(), canonical)
		}
	}
	_, err := AgentByName("nosuch")
	if err == nil {
		t.Fatal("AgentByName(nosuch) succeeded")
	}
	for _, want := range []string{"nosuch", "ref", "modified", "ovs"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-agent error %q does not mention %q", err, want)
		}
	}
}

// TestPublicPipeline runs the full Figure-1-style flow through the public
// API only: explore both agents, group, crosscheck, reproduce — and checks
// the known ref-vs-modified Packet Out findings surface.
func TestPublicPipeline(t *testing.T) {
	ctx := context.Background()
	ref, err := AgentByName("ref")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := AgentByName("modified")
	if err != nil {
		t.Fatal(err)
	}
	test, ok := TestByName("Packet Out")
	if !ok {
		t.Fatal("missing test Packet Out")
	}

	s := NewSolver()
	ra, err := Explore(ctx, ref, test, WithSolver(s), WithModels(true))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Explore(ctx, mod, test, WithSolver(s), WithModels(true))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Truncated || rb.Truncated {
		t.Fatal("exhaustive exploration reported truncation")
	}

	rep, err := CrossCheck(ctx, Group(ra), Group(rb), WithSolver(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Inconsistencies) == 0 {
		t.Fatal("ref vs modified found no inconsistencies")
	}
	all := ""
	for _, inc := range rep.Inconsistencies {
		all += inc.ACanonical + "\n" + inc.BCanonical + "\n"
		if len(inc.Witness) == 0 {
			t.Errorf("inconsistency %d has no witness", inc.AIndex)
		}
	}
	// Injected modification 1 (FLOOD rejected) and 2 (error code 5 for
	// port 0) are both visible on Packet Out.
	for _, want := range []string{"port=FLOOD", "ERROR/BAD_ACTION/5"} {
		if !strings.Contains(all, want) {
			t.Errorf("inconsistency set misses known finding %q", want)
		}
	}
	// Witnesses concretize into wire messages.
	wires := Reproduce(test, rep.Inconsistencies[0].Witness)
	if len(wires) == 0 {
		t.Fatal("Reproduce built no messages")
	}
	if labels := DescribeReproducer(wires); len(labels) != len(wires) {
		t.Fatalf("DescribeReproducer: %d labels for %d wires", len(labels), len(wires))
	}
}

// TestCrossCheckTestMismatch pins the usage error for crosschecking
// results from different tests.
func TestCrossCheckTestMismatch(t *testing.T) {
	ctx := context.Background()
	ref, _ := AgentByName("ref")
	t1, _ := TestByName("Packet Out")
	t2, _ := TestByName("Set Config")
	ra, err := Explore(ctx, ref, t1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Explore(ctx, ref, t2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CrossCheck(ctx, Group(ra), Group(rb)); err == nil {
		t.Fatal("CrossCheck across different tests succeeded")
	}
}

// explodingHandler branches on 18 independent bits — 2^18 paths, far more
// than any test waits for — so cancellation tests can observe a mid-run
// stop.
func explodingHandler(ctx *ExecContext) {
	n := 0
	for i := 0; i < 18; i++ {
		b := ctx.NewSym(fmt.Sprintf("b%02d", i), 1)
		if ctx.Branch(EqConst(b, 1)) {
			n++
		}
	}
	ctx.Emit(n)
}

// TestExploreHandlerCancellation is the acceptance check: cancelling the
// context mid-exploration returns promptly with a partial, Truncated=true
// result — for both the sequential and the parallel engine.
func TestExploreHandlerCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var events atomic.Int64
		res, err := ExploreHandler(ctx, explodingHandler,
			WithWorkers(workers),
			WithProgress(func(ev Event) {
				if ev.Phase != PhaseExplore {
					t.Errorf("unexpected phase %q", ev.Phase)
				}
				if events.Add(1) >= 40 {
					cancel()
				}
			}))
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Cancelled || !res.PathsTruncated {
			t.Fatalf("workers=%d: cancelled run: Cancelled=%t PathsTruncated=%t",
				workers, res.Cancelled, res.PathsTruncated)
		}
		if n := len(res.Paths); n == 0 || n >= 1<<18 {
			t.Fatalf("workers=%d: cancelled run kept %d paths, want partial non-empty set", workers, n)
		}
	}
}

// TestExploreCancellation is the same property through the full agent
// harness: the partial Result carries Truncated and Cancelled. Progress
// events dispatch asynchronously (the callback runs off the hot path), so
// the cancel lands a beat after the fifth path — the workload must be
// large enough to still be running then, hence FlowMod (1333 paths)
// rather than a fast test.
func TestExploreCancellation(t *testing.T) {
	ref, _ := AgentByName("ref")
	test, _ := TestByName("FlowMod")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := Explore(ctx, ref, test,
		WithProgress(func(ev Event) {
			if ev.Done >= 5 {
				cancel()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !res.Cancelled {
		t.Fatalf("cancelled explore: Truncated=%t Cancelled=%t", res.Truncated, res.Cancelled)
	}
	if n := len(res.Paths); n == 0 || n >= 1333 {
		t.Fatalf("cancelled explore kept %d paths, want a partial non-empty set", n)
	}
	// A cancelled partial result still serializes and reloads.
	var buf bytes.Buffer
	if err := WriteResults(&buf, res); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Paths) != len(res.Paths) {
		t.Fatalf("round trip: %d paths, want %d", len(rt.Paths), len(res.Paths))
	}
	if !rt.Truncated || !rt.Cancelled {
		t.Fatalf("round trip lost partial flags: Truncated=%t Cancelled=%t", rt.Truncated, rt.Cancelled)
	}
}

// TestExploreDeterminismPublicAPI re-checks the byte-identical-results
// property through the public wrapper: worker count must not leak into the
// serialized intermediate results.
func TestExploreDeterminismPublicAPI(t *testing.T) {
	test, _ := TestByName("Packet Out")
	serialize := func(workers int) []byte {
		ref, _ := AgentByName("ref")
		res, err := Explore(context.Background(), ref, test,
			WithWorkers(workers), WithModels(true))
		if err != nil {
			t.Fatal(err)
		}
		res.Elapsed = 0 // the only wall-clock-dependent field in the format
		var buf bytes.Buffer
		if err := WriteResults(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := serialize(1)
	for _, workers := range []int{2, 4} {
		if !bytes.Equal(seq, serialize(workers)) {
			t.Fatalf("results with %d workers differ from sequential", workers)
		}
	}
}

// TestCrossCheckProgressAndCancellation covers the crosscheck side of the
// event stream and context plumbing.
func TestCrossCheckProgressAndCancellation(t *testing.T) {
	ctx := context.Background()
	ref, _ := AgentByName("ref")
	ovs, _ := AgentByName("ovs")
	test, _ := TestByName("Packet Out")
	s := NewSolver()
	ra, err := Explore(ctx, ref, test, WithSolver(s), WithModels(true))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Explore(ctx, ovs, test, WithSolver(s), WithModels(true))
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := Group(ra), Group(rb)
	wantTotal := len(ga.Groups) * len(gb.Groups)

	var done, total atomic.Int64
	rep, err := CrossCheck(ctx, ga, gb, WithSolver(s), WithWorkers(1),
		WithProgress(func(ev Event) {
			if ev.Phase != PhaseCrossCheck {
				t.Errorf("unexpected phase %q", ev.Phase)
			}
			done.Store(int64(ev.Done))
			total.Store(int64(ev.Total))
		}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial || rep.Cancelled {
		t.Fatalf("unbudgeted crosscheck reported Partial=%t Cancelled=%t", rep.Partial, rep.Cancelled)
	}
	if got := int(total.Load()); got != wantTotal {
		t.Fatalf("progress Total = %d, want %d", got, wantTotal)
	}
	if got := int(done.Load()); got != wantTotal {
		t.Fatalf("progress Done reached %d, want %d", got, wantTotal)
	}

	// Cancelling before the scan starts yields an empty partial report.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	rep, err = CrossCheck(cctx, ga, gb, WithSolver(s), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Cancelled || !rep.Partial {
		t.Fatalf("pre-cancelled crosscheck: Cancelled=%t Partial=%t", rep.Cancelled, rep.Partial)
	}
}

// TestProgressEventStats: each stage's final progress event carries its
// solver statistics, so embedders can observe cache and clause-sharing
// efficacy without a profiler.
func TestProgressEventStats(t *testing.T) {
	ctx := context.Background()
	ref, _ := AgentByName("ref")
	mod, _ := AgentByName("modified")
	test, _ := TestByName("Packet Out")

	var lastExplore *SolverStats
	ra, err := Explore(ctx, ref, test, WithModels(true), WithClauseSharing(true),
		WithProgress(func(ev Event) {
			if ev.Stats != nil {
				lastExplore = ev.Stats
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if lastExplore == nil {
		t.Fatal("explore emitted no stats event")
	}
	if lastExplore.Queries != ra.SolverStats.Queries ||
		lastExplore.ClauseExports != ra.SolverStats.ClauseExports {
		t.Fatalf("stats event %+v does not match Result.SolverStats %+v", lastExplore, ra.SolverStats)
	}

	rb, err := Explore(ctx, mod, test, WithModels(true))
	if err != nil {
		t.Fatal(err)
	}
	var lastCheck *SolverStats
	rep, err := CrossCheck(ctx, Group(ra), Group(rb),
		WithProgress(func(ev Event) {
			if ev.Stats != nil {
				lastCheck = ev.Stats
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if lastCheck == nil {
		t.Fatal("crosscheck emitted no stats event")
	}
	if lastCheck.Queries != rep.SolverStats.Queries {
		t.Fatalf("stats event queries %d, report says %d", lastCheck.Queries, rep.SolverStats.Queries)
	}
	if rep.SolverStats.Queries != int64(rep.Queries) {
		t.Fatalf("report SolverStats.Queries = %d, want the %d crosscheck queries",
			rep.SolverStats.Queries, rep.Queries)
	}
}

// TestExploreHandlerTimeout exercises deadline-based cancellation (the
// form a coordinator would use): a deadline in the past must return
// immediately with an empty truncated result rather than exploring.
func TestExploreHandlerTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	res, err := ExploreHandler(ctx, explodingHandler, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled || !res.PathsTruncated {
		t.Fatalf("expired-deadline run: Cancelled=%t PathsTruncated=%t", res.Cancelled, res.PathsTruncated)
	}
	if len(res.Paths) != 0 {
		t.Fatalf("expired-deadline run explored %d paths", len(res.Paths))
	}
}
