package soft

import (
	"github.com/soft-testing/soft/internal/scenario"
)

// Scenario is a named deterministic sequence of steps — a stateful
// multi-message test case (install → modify/delete → probe) whose steps
// thread one agent instance's flow-table state. Scenarios compile to the
// same Test shape as the Table 1 suite and run through every layer of
// the pipeline: Explore, RunMatrix cells, the result store, worker
// fleets, and the campaign service.
type Scenario = scenario.Scenario

// ScenarioStep is one step of a Scenario. Its builder receives a NewSym
// function already namespaced by step index, so steps compose without
// symbolic-variable collisions and exploration stays canonical.
type ScenarioStep = scenario.Step

// RegisterScenario adds a scenario to the process-wide registry
// (mirroring RegisterAgent). It panics on a duplicate or empty name, on
// the reserved "gen:" prefix, and on a name that collides with a Table 1
// test. Registered scenarios resolve through TestByName and can be used
// anywhere a test name is accepted.
func RegisterScenario(s *Scenario) { scenario.Register(s) }

// Scenarios returns the registered scenarios, sorted by name. The seed
// library ships registered; generated scenarios ("gen:<index>") are not
// listed — they resolve on demand by index.
func Scenarios() []*Scenario { return scenario.All() }

// ScenarioNames returns the registered scenario names, sorted.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioByName resolves a registered scenario name or a generated
// "gen:<index>" name.
func ScenarioByName(name string) (*Scenario, bool) { return scenario.ByName(name) }

// GeneratedScenario returns the nth scenario of the deterministic
// bounded step-sequence enumeration (0 <= n < GeneratedScenarioCount).
// The index is the scenario's entire identity: any process resolves
// "gen:<n>" to the same definition, with no registration coordination.
func GeneratedScenario(n int) (*Scenario, bool) { return scenario.Generated(n) }

// GeneratedScenarioCount is the size of the generator's enumeration.
func GeneratedScenarioCount() int { return scenario.GeneratedCount() }
