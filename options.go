package soft

import (
	"io"
	"time"

	"github.com/soft-testing/soft/internal/symexec"
)

// Option tunes Explore, ExploreHandler, CrossCheck, or InjectedFindings.
// Options irrelevant to a call are ignored (WithBudget by Explore,
// WithMaxPaths by CrossCheck, ...), so one option list can be shared by a
// whole pipeline run.
type Option func(*config)

type config struct {
	maxPaths      int
	maxDepth      int
	workers       int
	models        bool
	budget        time.Duration
	strategy      Strategy
	solver        *Solver
	progress      func(Event)
	clauseSharing bool
	sharedCache   bool

	canonicalCut    bool
	canonicalCutSet bool
	shardDepth      int
	leaseTimeout    time.Duration
	log             io.Writer
	workerName      string
}

func newConfig(opts []Option) *config {
	cfg := &config{sharedCache: true}
	for _, o := range opts {
		o(cfg)
	}
	return cfg
}

// canonicalCutOr resolves the tri-state canonical-cut option: explicit
// choices win, otherwise the caller's default applies (false for in-process
// Explore, true for distributed Serve).
func (c *config) canonicalCutOr(def bool) bool {
	if c.canonicalCutSet {
		return c.canonicalCut
	}
	return def
}

// WithWorkers sets the number of parallel workers: exploration workers for
// Explore/ExploreHandler, solver-query workers for CrossCheck (0 =
// GOMAXPROCS, 1 = sequential). Exhaustive explorations and full
// crosschecks are deterministic for every worker count.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithMaxPaths caps the number of explored paths (0 = the harness
// default). The paper notes SOFT works with partial path sets too; a
// truncated run sets Result.Truncated.
func WithMaxPaths(n int) Option { return func(c *config) { c.maxPaths = n } }

// WithMaxDepth caps symbolic decisions per path (0 = the harness default).
func WithMaxDepth(n int) Option { return func(c *config) { c.maxDepth = n } }

// WithBudget bounds a crosscheck's wall-clock time; an expired budget
// stops the cross product and marks the Report partial (the paper's
// ">28h" CS FlowMods row). For hard deadlines on exploration use a
// context.WithTimeout instead — contexts cancel promptly, the budget is
// only checked between solver queries.
func WithBudget(d time.Duration) Option { return func(c *config) { c.budget = d } }

// WithStrategy overrides the engine's search strategy (default:
// Interleaved(1), the Cloud9 default per §4.1). Exhaustive runs produce
// the same result for every strategy; partial runs explore
// strategy-dependent prefixes.
func WithStrategy(s Strategy) Option { return func(c *config) { c.strategy = s } }

// WithModels extracts a concrete input example per explored path. Models
// make results self-contained test suites but cost one extra solver call
// per path.
func WithModels(want bool) Option { return func(c *config) { c.models = want } }

// WithSolver reuses an existing solver (and its query cache) across
// pipeline stages; nil means a fresh solver per call.
func WithSolver(s *Solver) Option { return func(c *config) { c.solver = s } }

// WithClauseSharing enables learned-clause sharing between the SAT cores
// of an exploration's paths (Explore and ExploreHandler; CrossCheck
// ignores it): input variables get one canonical numbering, short learned
// clauses flow through a bounded lock-free ring, and every import is
// re-validated against the importer's own clause database. Results are
// byte-identical with sharing on or off — sharing only cuts repeated
// conflict work on structurally similar paths. Default off.
func WithClauseSharing(on bool) Option { return func(c *config) { c.clauseSharing = on } }

// WithSharedCache controls how CrossCheck workers use the solver's query
// cache (Explore ignores it — path feasibility runs on path-private SAT
// cores). True, the default, shares one sharded single-flight cache across
// all workers: structurally equal queries are solved once per run. False
// hands each worker a copy-on-write clone — zero cross-worker contention
// at the cost of re-solving overlapping queries per worker. The report is
// identical either way.
func WithSharedCache(on bool) Option { return func(c *config) { c.sharedCache = on } }

// WithCanonicalCut controls how a MaxPaths cap truncates exploration. On,
// the run keeps the MaxPaths canonically smallest paths (lexicographic
// decision-prefix order) instead of the first MaxPaths that happened to
// complete, making truncated results byte-identical across worker counts
// and distributed layouts — at the cost of exploring somewhat past the cap
// before the cut converges. Defaults: off for Explore/ExploreHandler
// (preserving the cheap first-N behavior), on for Serve (a distributed
// truncation must not depend on which worker finished first).
func WithCanonicalCut(on bool) Option {
	return func(c *config) { c.canonicalCut = on; c.canonicalCutSet = true }
}

// WithShardDepth tunes how the distributed coordinator splits the frontier
// (Serve only): forks deeper than this many decisions become worker shards,
// shallower prefixes the coordinator explores itself during the split.
// 0 means the dist default.
func WithShardDepth(d int) Option { return func(c *config) { c.shardDepth = d } }

// WithLeaseTimeout bounds how long a distributed shard may stay leased to
// one worker before the coordinator re-offers it to another (Serve only).
// Re-leasing never affects results — the first completion wins, and
// determinism makes duplicates byte-identical. 0 means the dist default;
// negative disables timeout re-leasing (disconnects still re-lease).
func WithLeaseTimeout(d time.Duration) Option {
	return func(c *config) { c.leaseTimeout = d }
}

// WithLog streams distributed lifecycle lines (worker connects, lease
// grants, re-leases, shard completions) from Serve and Work to w.
func WithLog(w io.Writer) Option { return func(c *config) { c.log = w } }

// WithWorkerName labels a Work process in coordinator logs (default
// "hostname/pid").
func WithWorkerName(name string) Option { return func(c *config) { c.workerName = name } }

// WithProgress streams progress events from long runs to fn. The callback
// may be invoked concurrently when the run uses multiple workers, and must
// not block for long — it runs on the hot path's completion edge. Events
// are advisory: they never affect results.
func WithProgress(fn func(Event)) Option { return func(c *config) { c.progress = fn } }

// Phase identifies which pipeline stage emitted an Event.
type Phase string

// Pipeline stages reported through WithProgress.
const (
	PhaseExplore    Phase = "explore"
	PhaseCrossCheck Phase = "crosscheck"
)

// Event is one progress report from a running pipeline stage.
type Event struct {
	Phase Phase
	// Agent is the exploring agent (PhaseExplore, empty for
	// ExploreHandler) or the crosscheck's first agent (PhaseCrossCheck).
	Agent string
	// AgentB is the crosscheck's second agent.
	AgentB string
	// Test is the test under exploration or crosscheck.
	Test string
	// Done counts completed paths (PhaseExplore) or claimed group pairs
	// (PhaseCrossCheck). Counts are monotonically increasing but may be
	// observed out of order under concurrency.
	Done int
	// Total is the known amount of work (group pairs for PhaseCrossCheck;
	// 0 for PhaseExplore, where the path count is not known in advance).
	Total int
	// Stats carries the stage's solver statistics (queries, cache hits,
	// learned-clause exports/imports). It is set only on the final event a
	// stage emits, after its work completed; nil on incremental events.
	Stats *SolverStats
}

// Search strategies for WithStrategy. All built-ins support parallel
// exploration (per-worker frontier instances with deterministic seeds).

// DFS explores depth-first.
func DFS() Strategy { return symexec.NewDFS() }

// BFS explores breadth-first.
func BFS() Strategy { return symexec.NewBFS() }

// RandomStrategy explores in deterministic pseudo-random order.
func RandomStrategy(seed int64) Strategy { return symexec.NewRandom(seed) }

// CoverageOptimized prioritizes paths whose pending branch direction is
// not yet covered.
func CoverageOptimized() Strategy { return symexec.NewCoverageOptimized() }

// Interleaved alternates coverage-optimized and random selection — the
// engine's default, mirroring Cloud9's (§4.1).
func Interleaved(seed int64) Strategy { return symexec.NewInterleaved(seed) }
