package soft

import (
	"io"
	"log/slog"
	"net"
	"time"

	"github.com/soft-testing/soft/internal/symexec"
)

// Option tunes Explore, ExploreHandler, CrossCheck, or InjectedFindings.
// Options irrelevant to a call are ignored (WithBudget by Explore,
// WithMaxPaths by CrossCheck, ...), so one option list can be shared by a
// whole pipeline run.
type Option func(*config)

type config struct {
	maxPaths      int
	maxDepth      int
	workers       int
	models        bool
	budget        time.Duration
	strategy      Strategy
	solver        *Solver
	progress      func(Event)
	clauseSharing bool
	sharedCache   bool
	incremental   bool
	merge         bool

	canonicalCut    bool
	canonicalCutSet bool
	shardDepth      int
	adaptiveShards  bool
	leaseTimeout    time.Duration
	log             io.Writer
	logger          *slog.Logger
	workerName      string

	storeDir     string
	codeVersion  string
	fleetLn      net.Listener
	noCrossCheck bool

	campaignURL string
	tenant      string

	scenarios []string
}

func newConfig(opts []Option) *config {
	cfg := &config{sharedCache: true, incremental: true}
	for _, o := range opts {
		o(cfg)
	}
	return cfg
}

// canonicalCutOr resolves the tri-state canonical-cut option: explicit
// choices win, otherwise the caller's default applies (false for in-process
// Explore, true for distributed Serve).
func (c *config) canonicalCutOr(def bool) bool {
	if c.canonicalCutSet {
		return c.canonicalCut
	}
	return def
}

// WithWorkers sets the number of parallel workers: exploration workers for
// Explore/ExploreHandler, solver-query workers for CrossCheck (0 =
// GOMAXPROCS, 1 = sequential). Exhaustive explorations and full
// crosschecks are deterministic for every worker count.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithMaxPaths caps the number of explored paths (0 = the harness
// default). The paper notes SOFT works with partial path sets too; a
// truncated run sets Result.Truncated.
func WithMaxPaths(n int) Option { return func(c *config) { c.maxPaths = n } }

// WithMaxDepth caps symbolic decisions per path (0 = the harness default).
func WithMaxDepth(n int) Option { return func(c *config) { c.maxDepth = n } }

// WithBudget bounds a crosscheck's wall-clock time; an expired budget
// stops the cross product and marks the Report partial (the paper's
// ">28h" CS FlowMods row). For hard deadlines on exploration use a
// context.WithTimeout instead — contexts cancel promptly, the budget is
// only checked between solver queries.
func WithBudget(d time.Duration) Option { return func(c *config) { c.budget = d } }

// WithStrategy overrides the engine's search strategy (default:
// Interleaved(1), the Cloud9 default per §4.1). Exhaustive runs produce
// the same result for every strategy; partial runs explore
// strategy-dependent prefixes.
func WithStrategy(s Strategy) Option { return func(c *config) { c.strategy = s } }

// WithModels extracts a concrete input example per explored path. Models
// make results self-contained test suites but cost one extra solver call
// per path.
func WithModels(want bool) Option { return func(c *config) { c.models = want } }

// WithSolver reuses an existing solver (and its query cache) across
// pipeline stages; nil means a fresh solver per call.
func WithSolver(s *Solver) Option { return func(c *config) { c.solver = s } }

// WithClauseSharing enables learned-clause sharing between the SAT cores
// of an exploration's paths (Explore and ExploreHandler; CrossCheck
// ignores it): input variables get one canonical numbering, short learned
// clauses flow through a bounded lock-free ring, and every import is
// re-validated against the importer's own clause database. Results are
// byte-identical with sharing on or off — sharing only cuts repeated
// conflict work on structurally similar paths. Default off.
func WithClauseSharing(on bool) Option { return func(c *config) { c.clauseSharing = on } }

// WithIncrementalSolver controls the assumption-stack solver sessions used
// by exploration (Explore, ExploreHandler, Serve, and RunMatrix cells;
// CrossCheck ignores it). On — the default — each exploration worker keeps
// one persistent SAT core for its whole run: every path-condition conjunct
// is encoded once behind an activation literal, a child path pushes only
// its new branch constraint, and sibling paths share the session's clause
// database and learned conflicts. Results are byte-identical on or off;
// the switch exists to benchmark the win and to fall back to per-path
// solvers if a workload ever regresses.
func WithIncrementalSolver(on bool) Option { return func(c *config) { c.incremental = on } }

// WithStateMerging enables diamond state merging on top of the incremental
// sessions (it implies WithIncrementalSolver for the run): at each branch
// frontier the engine first asks a relaxed query that drops the newest
// branch decision, and a relaxed UNSAT — which covers both diamond
// siblings at once — is memoized engine-wide so the matching sibling's arm
// is pruned without any solver call. Answer-preserving; off by default.
func WithStateMerging(on bool) Option { return func(c *config) { c.merge = on } }

// WithSharedCache controls how CrossCheck workers use the solver's query
// cache (Explore ignores it — path feasibility runs on path-private SAT
// cores). True, the default, shares one sharded single-flight cache across
// all workers: structurally equal queries are solved once per run. False
// hands each worker a copy-on-write clone — zero cross-worker contention
// at the cost of re-solving overlapping queries per worker. The report is
// identical either way.
func WithSharedCache(on bool) Option { return func(c *config) { c.sharedCache = on } }

// WithCanonicalCut controls how a MaxPaths cap truncates exploration. On,
// the run keeps the MaxPaths canonically smallest paths (lexicographic
// decision-prefix order) instead of the first MaxPaths that happened to
// complete, making truncated results byte-identical across worker counts
// and distributed layouts — at the cost of exploring somewhat past the cap
// before the cut converges. Defaults: off for Explore/ExploreHandler
// (preserving the cheap first-N behavior), on for Serve (a distributed
// truncation must not depend on which worker finished first).
func WithCanonicalCut(on bool) Option {
	return func(c *config) { c.canonicalCut = on; c.canonicalCutSet = true }
}

// WithShardDepth tunes how the distributed coordinator splits the frontier
// (Serve and RunMatrix): forks deeper than this many decisions become
// worker shards, shallower prefixes the coordinator explores itself during
// the split. 0 means the dist default.
func WithShardDepth(d int) Option { return func(c *config) { c.shardDepth = d } }

// WithAdaptiveShards enables progress-driven shard balancing (Serve and
// RunMatrix): a leased subtree that reports slow progress while workers
// starve is speculatively re-split into deeper sub-shards, and trivially
// small shards ride batched leases. Balancing never changes results —
// every layout is byte-identical — it only improves how evenly unbalanced
// execution trees spread over the fleet. `soft serve -shard-depth=auto`
// sets this.
func WithAdaptiveShards(on bool) Option { return func(c *config) { c.adaptiveShards = on } }

// WithStore enables the campaign result store (RunMatrix): cell results
// and grouping constructions are cached content-addressed in this
// directory, keyed by (agent, test, engine config, code version), so a
// re-run only explores cells whose inputs changed. The directory is
// created if needed; it may be shared by concurrent campaigns.
func WithStore(dir string) Option { return func(c *config) { c.storeDir = dir } }

// WithCodeVersion overrides the code-version component of campaign cache
// keys (default CodeVersion(), the binary's VCS build stamp). Pin it to a
// build identifier in deployments where the stamp is unavailable.
func WithCodeVersion(v string) Option { return func(c *config) { c.codeVersion = v } }

// WithFleetListener makes RunMatrix run non-cached cells on a persistent
// worker fleet listening on ln: `soft work` processes (or Work calls)
// connect once and drain the whole matrix, job by job, without
// reconnecting. The campaign owns the listener and closes it when done.
func WithFleetListener(ln net.Listener) Option { return func(c *config) { c.fleetLn = ln } }

// WithCrossCheck controls the campaign's phase 2 (RunMatrix; default on):
// false explores (and caches) the matrix cells without crosschecking agent
// pairs.
func WithCrossCheck(on bool) Option { return func(c *config) { c.noCrossCheck = !on } }

// WithCampaignService routes RunMatrix through an always-on campaign
// service (`soft campaignd`) at baseURL instead of running in-process: the
// matrix is submitted as one job, progress streams back through
// WithProgress, and the returned report is parsed from the service's
// canonical bytes — byte-identical to a local run of the same campaign,
// but carrying the canonical surface only (no in-memory cell results).
// Store, fleet, and worker options then live with the service;
// WithFleetListener is mutually exclusive with this option.
func WithCampaignService(baseURL string) Option {
	return func(c *config) { c.campaignURL = baseURL }
}

// WithTenant names the submitting tenant for campaign-service jobs
// (default "default"). The service schedules fair-share across tenants,
// so one backlogged tenant cannot starve the rest.
func WithTenant(name string) Option { return func(c *config) { c.tenant = name } }

// WithScenarios appends the named scenarios (registered via
// RegisterScenario, or generated "gen:<index>" names) as extra columns of
// a RunMatrix campaign: cells become agent × test∪scenario. Scenario
// cells run through the same store/fleet/service machinery as Table 1
// cells and carry their definition hash in the cache key, so editing a
// scenario invalidates exactly its own cells.
func WithScenarios(names ...string) Option {
	return func(c *config) { c.scenarios = append(c.scenarios, names...) }
}

// WithLeaseTimeout bounds how long a distributed shard may stay leased to
// one worker before the coordinator re-offers it to another (Serve and
// RunMatrix fleets). Re-leasing never affects results — the first
// completion wins, and determinism makes duplicates byte-identical. 0
// means the dist default; negative disables timeout re-leasing
// (disconnects still re-lease).
func WithLeaseTimeout(d time.Duration) Option {
	return func(c *config) { c.leaseTimeout = d }
}

// WithLog streams distributed lifecycle lines (worker connects, lease
// grants, re-leases, shard completions) from Serve and Work to w. Lines
// render through the structured text handler; WithLogger chooses the
// handler (JSON output, level filtering) explicitly and wins over
// WithLog when both are set.
func WithLog(w io.Writer) Option { return func(c *config) { c.log = w } }

// WithLogger routes distributed lifecycle logging (Serve, Work, and
// RunMatrix fleets) through an explicit slog.Logger. Every line carries
// the job/lease/shard/worker ids as attributes, plus the trace id when
// the run is traced — the cross-process correlation key. Build a handler
// with obs.NewLogger (text or JSON) or bring any slog backend.
func WithLogger(l *slog.Logger) Option { return func(c *config) { c.logger = l } }

// WithWorkerName labels a Work process in coordinator logs (default
// "hostname/pid").
func WithWorkerName(name string) Option { return func(c *config) { c.workerName = name } }

// WithProgress streams progress events from long runs to fn. Events are
// dispatched through a bounded queue drained by a single goroutine: fn is
// never invoked concurrently, always sees events in enqueue order, and may
// block without stalling exploration — when it falls behind, incremental
// events are dropped (counted in the soft_progress_events_dropped_total
// metric; counts are monotone high-water marks, so drops only coarsen the
// stream). The final event a stage emits — the one carrying Stats — is
// never dropped, and fn has returned from every call before the entry
// point returns. Events are advisory: they never affect results.
func WithProgress(fn func(Event)) Option { return func(c *config) { c.progress = fn } }

// Phase identifies which pipeline stage emitted an Event.
type Phase string

// Pipeline stages reported through WithProgress.
const (
	PhaseExplore    Phase = "explore"
	PhaseCrossCheck Phase = "crosscheck"
	// PhaseMatrix events report campaign progress: Done counts completed
	// work units (cells plus pair checks) out of Total.
	PhaseMatrix Phase = "matrix"
)

// Event is one progress report from a running pipeline stage.
type Event struct {
	Phase Phase
	// Agent is the exploring agent (PhaseExplore, empty for
	// ExploreHandler) or the crosscheck's first agent (PhaseCrossCheck).
	Agent string
	// AgentB is the crosscheck's second agent.
	AgentB string
	// Test is the test under exploration or crosscheck.
	Test string
	// Done counts completed paths (PhaseExplore) or claimed group pairs
	// (PhaseCrossCheck). Counts are monotonically increasing but may be
	// observed out of order under concurrency.
	Done int
	// Total is the known amount of work (group pairs for PhaseCrossCheck;
	// 0 for PhaseExplore, where the path count is not known in advance).
	Total int
	// Stats carries the stage's solver statistics (queries, cache hits,
	// learned-clause exports/imports). It is set only on the final event a
	// stage emits, after its work completed; nil on incremental events.
	Stats *SolverStats
}

// Search strategies for WithStrategy. All built-ins support parallel
// exploration (per-worker frontier instances with deterministic seeds).

// DFS explores depth-first.
func DFS() Strategy { return symexec.NewDFS() }

// BFS explores breadth-first.
func BFS() Strategy { return symexec.NewBFS() }

// RandomStrategy explores in deterministic pseudo-random order.
func RandomStrategy(seed int64) Strategy { return symexec.NewRandom(seed) }

// CoverageOptimized prioritizes paths whose pending branch direction is
// not yet covered.
func CoverageOptimized() Strategy { return symexec.NewCoverageOptimized() }

// Interleaved alternates coverage-optimized and random selection — the
// engine's default, mirroring Cloud9's (§4.1).
func Interleaved(seed int64) Strategy { return symexec.NewInterleaved(seed) }
