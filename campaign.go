package soft

import (
	"bytes"
	"context"
	"fmt"

	"github.com/soft-testing/soft/internal/campaignd"
	"github.com/soft-testing/soft/internal/obs"
	"github.com/soft-testing/soft/internal/sched"
)

// Campaign-service types. A campaign service (`soft campaignd`) is an
// always-on coordinator that accepts matrix jobs over HTTP, journals them
// durably in its store directory, schedules them fair-share across
// tenants, and survives being killed mid-campaign: on restart it resumes
// every in-flight job, and determinism plus the content-addressed store
// make the resumed report byte-identical to an uninterrupted run.
type (
	// CampaignClient talks to a campaign service. Its zero value is not
	// useful; construct one with NewCampaignClient.
	CampaignClient = campaignd.Client
	// CampaignJob is one journaled job record: spec, lifecycle state,
	// restart count, and progress counters.
	CampaignJob = campaignd.Job
	// CampaignJobSpec is what Submit sends: the matrix plus the engine
	// configuration its cells share. Empty Agents/Tests mean "all".
	CampaignJobSpec = campaignd.JobSpec
	// CampaignEvent is one progress event on a job's stream.
	CampaignEvent = campaignd.Event
	// CampaignJobMetrics is one job's derived timing metrics: queue wait,
	// run duration, and restart count computed from the journal timestamps.
	CampaignJobMetrics = campaignd.JobMetrics
	// CampaignStatus is the service's daemon-level counter snapshot.
	CampaignStatus = campaignd.Status
	// CampaignJobState is a job's lifecycle position.
	CampaignJobState = campaignd.JobState
)

// Campaign job lifecycle states: queued → running → done | failed |
// cancelled. A coordinator restart moves running jobs back to queued,
// never to failed; cancellation is journaled as terminal, so a restart
// never requeues a cancelled job.
const (
	CampaignQueued    = campaignd.StateQueued
	CampaignRunning   = campaignd.StateRunning
	CampaignDone      = campaignd.StateDone
	CampaignFailed    = campaignd.StateFailed
	CampaignCancelled = campaignd.StateCancelled
)

// NewCampaignClient returns a client for the campaign service at baseURL
// (e.g. "http://127.0.0.1:7130"). The client is used by the soft CLI's
// submit/jobs/fetch verbs, and by RunMatrix when WithCampaignService
// routes a campaign through a service instead of running it in-process.
func NewCampaignClient(baseURL string) *CampaignClient {
	return campaignd.NewClient(baseURL)
}

// ReadMatrixReport parses a canonical campaign report (what
// MatrixReport.Write renders, `soft matrix -o` writes, and a campaign
// service serves) back into a MatrixReport. Parsed reports carry the
// canonical surface only — cell summaries, pair checks, inconsistencies —
// not the full per-cell results; Write∘ReadMatrixReport is the identity on
// canonical bytes.
func ReadMatrixReport(data []byte) (*MatrixReport, error) {
	return sched.ReadReport(bytes.NewReader(data))
}

// runMatrixRemote is RunMatrix's campaign-service path: submit the matrix
// as one job, stream progress, and parse the canonical report the service
// produced. Determinism makes the result indistinguishable from a local
// run — byte-identical canonical bytes — but only the canonical surface
// comes back (no in-memory cell results), and fleet/cache statistics stay
// with the service.
func runMatrixRemote(ctx context.Context, cfg *config, agents, tests []string) (*MatrixReport, error) {
	if cfg.fleetLn != nil {
		cfg.fleetLn.Close()
		return nil, fmt.Errorf("soft: WithFleetListener and WithCampaignService are mutually exclusive — workers join the service's fleet, not the client's")
	}
	cl := NewCampaignClient(cfg.campaignURL)
	spec := CampaignJobSpec{
		Tenant:        cfg.tenant,
		Agents:        agents,
		Tests:         tests,
		MaxPaths:      cfg.maxPaths,
		MaxDepth:      cfg.maxDepth,
		Models:        cfg.models,
		ClauseSharing: cfg.clauseSharing,
		CrossCheck:    !cfg.noCrossCheck,
		CodeVersion:   cfg.codeVersion,
	}
	// With a local tracer active, thread the trace through the service:
	// the job is submitted traced (the id rides the spec and the
	// traceparent-style header), and the daemon's bundle — its own spans
	// plus every fleet worker's — merges back into this process's trace
	// once the job settles. Observation only, like all tracing.
	traced := obs.Tracing()
	if traced {
		spec.Trace = true
		spec.TraceID = obs.FormatTraceID(obs.NewTraceID())
	}
	job, err := cl.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan("campaign:" + job.ID)
	defer sp.End()
	var onEvent func(CampaignEvent)
	if cfg.progress != nil {
		progress := cfg.progress
		onEvent = func(ev CampaignEvent) {
			progress(Event{Phase: PhaseMatrix, Done: ev.Done, Total: ev.Total})
		}
	}
	final, err := cl.Watch(ctx, job.ID, onEvent)
	if err != nil {
		return nil, err
	}
	if final.State != CampaignDone {
		return nil, fmt.Errorf("soft: campaign job %s %s: %s", final.ID, final.State, final.Error)
	}
	data, err := cl.Report(ctx, final.ID)
	if err != nil {
		return nil, err
	}
	if traced {
		// Trace download failures never fail the campaign — the report is
		// the product, the trace an advisory artifact.
		if b, terr := cl.Trace(ctx, final.ID); terr == nil {
			if tr := obs.Active(); tr != nil {
				tr.MergeBundle(b)
			}
		} else if cfg.log != nil {
			fmt.Fprintf(cfg.log, "soft: campaign trace download failed: %v\n", terr)
		}
	}
	return ReadMatrixReport(data)
}
