package soft

import "github.com/soft-testing/soft/internal/sym"

// Expression constructors for embedders writing custom Handlers or
// Assume/Branch conditions. These cover the comparisons and connectives a
// driver typically needs; symbolic input variables come from
// ExecContext.NewSym during exploration (or SymVar when rebuilding
// conditions outside a run). All constructors hash-cons and
// constant-fold, so equal expressions are pointer-equal.

// Const builds a w-bit constant.
func Const(w int, v uint64) *Expr { return sym.Const(w, v) }

// SymVar builds a named w-bit symbolic variable. Inside a Handler, use
// ExecContext.NewSym instead so the engine tracks the input.
func SymVar(name string, w int) *Expr { return sym.Var(name, w) }

// Bool builds a boolean constant.
func Bool(v bool) *Expr { return sym.Bool(v) }

// Eq compares two equal-width bitvectors for equality.
func Eq(a, b *Expr) *Expr { return sym.Eq(a, b) }

// EqConst compares a bitvector against a constant of the same width.
func EqConst(a *Expr, v uint64) *Expr { return sym.EqConst(a, v) }

// Ne is the negation of Eq.
func Ne(a, b *Expr) *Expr { return sym.Ne(a, b) }

// Ult is unsigned less-than.
func Ult(a, b *Expr) *Expr { return sym.Ult(a, b) }

// Ule is unsigned less-or-equal.
func Ule(a, b *Expr) *Expr { return sym.Ule(a, b) }

// LAnd is boolean conjunction (true when empty).
func LAnd(xs ...*Expr) *Expr { return sym.LAnd(xs...) }

// LOr is boolean disjunction (false when empty).
func LOr(xs ...*Expr) *Expr { return sym.LOr(xs...) }

// LNot is boolean negation.
func LNot(e *Expr) *Expr { return sym.LNot(e) }
