// Command soft-group groups a phase-1 results file by output result: all
// path conditions with the same normalized trace merge into one disjunction
// (§3.4). It prints the distinct behaviors and their subspace sizes.
//
// Usage:
//
//	soft-group results.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/soft-testing/soft/internal/group"
	"github.com/soft-testing/soft/internal/harness"
)

func main() {
	verbose := flag.Bool("v", false, "print each group's condition size")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: soft-group [-v] results.txt")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "soft-group:", err)
		os.Exit(1)
	}
	defer f.Close()
	res, err := harness.ReadResults(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soft-group:", err)
		os.Exit(1)
	}
	g := group.Paths(res)
	fmt.Printf("%s / %s: %d paths -> %d distinct output results (grouped in %s)\n",
		g.Agent, g.Test, len(res.Paths), len(g.Groups), g.Elapsed.Round(time.Microsecond))
	for i, gr := range g.Groups {
		fmt.Printf("\n[%d] %d path(s)%s\n", i, gr.PathCount, crashMark(gr.Crashed))
		for _, line := range strings.Split(gr.Canonical, "\n") {
			fmt.Printf("    %s\n", line)
		}
		if *verbose {
			fmt.Printf("    condition: %d boolean ops\n", gr.Cond.Size())
		}
	}
}

func crashMark(c bool) string {
	if c {
		return "  [CRASH]"
	}
	return ""
}
