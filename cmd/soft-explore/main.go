// Command soft-explore runs SOFT's first phase for one agent and one test:
// it symbolically executes the agent on the test's input sequence and
// writes the intermediate results (path conditions + normalized output
// traces) to a file. Each vendor runs this privately on its own agent
// (§2.4); only the results file moves to the crosscheck phase.
//
// Usage:
//
//	soft-explore -agent ref|ovs|modified -test "Packet Out" -o results.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/agents/modified"
	"github.com/soft-testing/soft/internal/agents/ovs"
	"github.com/soft-testing/soft/internal/agents/refswitch"
	"github.com/soft-testing/soft/internal/harness"
)

func agentByName(name string) (agents.Agent, error) {
	switch name {
	case "ref", "reference":
		return refswitch.New(), nil
	case "ovs", "openvswitch":
		return ovs.New(), nil
	case "modified", "mod":
		return modified.New(), nil
	}
	return nil, fmt.Errorf("unknown agent %q (want ref, ovs or modified)", name)
}

func main() {
	agentName := flag.String("agent", "ref", "agent under test: ref, ovs or modified")
	testName := flag.String("test", "Packet Out", "Table 1 test name")
	out := flag.String("o", "", "output file (default stdout)")
	maxPaths := flag.Int("max-paths", 0, "cap on explored paths (0 = default)")
	models := flag.Bool("models", true, "extract a concrete input example per path")
	workers := flag.Int("workers", 0, "parallel exploration workers (0 = GOMAXPROCS, 1 = sequential)")
	list := flag.Bool("list", false, "list available tests and exit")
	flag.Parse()

	if *list {
		for _, t := range harness.Tests() {
			fmt.Printf("%-14s %s\n", t.Name, t.Desc)
		}
		return
	}
	a, err := agentByName(*agentName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soft-explore:", err)
		os.Exit(2)
	}
	t, ok := harness.TestByName(*testName)
	if !ok {
		fmt.Fprintf(os.Stderr, "soft-explore: unknown test %q (use -list)\n", *testName)
		os.Exit(2)
	}

	res := harness.Explore(a, t, harness.Options{MaxPaths: *maxPaths, WantModels: *models, Workers: *workers})
	fmt.Fprintf(os.Stderr, "%s / %s: %d paths in %s (coverage %.1f%% instr, %.1f%% branch)\n",
		res.Agent, res.Test, len(res.Paths), res.Elapsed.Round(time.Millisecond),
		res.InstrPct, res.BranchPct)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "soft-explore:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := res.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "soft-explore:", err)
		os.Exit(1)
	}
}
