package main

import (
	"context"
	"errors"
	"fmt"

	"github.com/soft-testing/soft"
)

func workCmd() *command {
	return &command{
		name:     "work",
		synopsis: "explore shard leases for a soft-serve coordinator",
		run:      runWork,
	}
}

func runWork(e *env, args []string) error {
	fs := newFlags(e, "work")
	addr := fs.String("addr", "127.0.0.1:7473", "coordinator TCP address to connect to")
	workers := fs.Int("workers", 0, "parallel engine workers per shard (0 = GOMAXPROCS, 1 = sequential)")
	name := fs.String("name", "", "worker name in coordinator logs (default hostname/pid)")
	timeout := fs.Duration("timeout", 0, "wall-clock limit; on expiry the current shard is abandoned for re-lease")
	logFormat := logFormatFlag(fs)
	verbose := fs.Bool("v", false, "report lease lifecycle on stderr")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}
	logger, err := newCLILogger(e.stderr, *logFormat)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := []soft.Option{
		soft.WithWorkers(*workers),
		soft.WithWorkerName(*name),
	}
	if *verbose {
		opts = append(opts, soft.WithLogger(logger))
	}
	if err := soft.Work(ctx, *addr, opts...); err != nil {
		if errors.Is(err, soft.ErrProtocolMismatch) {
			// A version mismatch is a deployment problem, not a runtime
			// failure: report it as a usage-level error (exit 2) instead of
			// surfacing a raw decode error.
			return usageError{err}
		}
		return err
	}
	fmt.Fprintln(e.stderr, "soft work: run complete")
	return nil
}
