package main

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMatrixE2E is the campaign acceptance test, multi-process edition: it
// builds the real soft binary and runs a 2-agent × 2-test campaign on a
// 2-worker fleet, SIGKILLing the first worker after it takes a lease.
// It asserts:
//
//   - every per-cell results file is byte-identical to an individual
//     `soft explore -workers 4` run of that cell;
//   - the canonical campaign report is byte-identical to a fleetless
//     sequential `soft matrix` run (worker kill and all);
//   - a warm re-run against the same store hits the cache for every cell
//     (no workers needed) and reproduces the report byte for byte.
func TestMatrixE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH; cannot build the soft binary")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "soft")
	build := exec.Command(goTool, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	agents := "ref,modified"
	tests := "Packet Out,Stats Request"
	cellNames := []string{
		"ref--Packet_Out", "ref--Stats_Request",
		"modified--Packet_Out", "modified--Stats_Request",
	}

	// Reference 1: fleetless sequential campaign.
	seqReport := filepath.Join(dir, "seq.report")
	seq := exec.Command(bin, "matrix", "-agents", agents, "-tests", tests,
		"-workers", "1", "-o", seqReport)
	if out, err := seq.CombinedOutput(); err != nil {
		t.Fatalf("fleetless soft matrix: %v\n%s", err, out)
	}

	// Reference 2: individual explores per cell.
	for _, cell := range cellNames {
		parts := strings.SplitN(cell, "--", 2)
		agent := parts[0]
		test := strings.ReplaceAll(parts[1], "_", " ")
		out := filepath.Join(dir, cell+".explore")
		explore := exec.Command(bin, "explore", "-agent", agent, "-test", test,
			"-workers", "4", "-o", out)
		if o, err := explore.CombinedOutput(); err != nil {
			t.Fatalf("soft explore %s/%s: %v\n%s", agent, test, err, o)
		}
	}

	// The campaign: coordinator fleet on an ephemeral port, store enabled,
	// per-cell results captured.
	storeDir := filepath.Join(dir, "store")
	cellsDir := filepath.Join(dir, "cells")
	distReport := filepath.Join(dir, "dist.report")
	matrix := exec.Command(bin, "matrix", "-agents", agents, "-tests", tests,
		"-addr", "127.0.0.1:0", "-store", storeDir, "-code-version", "e2e",
		"-results-dir", cellsDir, "-o", distReport,
		"-lease-timeout", "5s", "-progress", "-v", "-timeout", "2m")
	matrixErr, err := matrix.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := matrix.Start(); err != nil {
		t.Fatalf("start soft matrix: %v", err)
	}
	defer matrix.Process.Kill()

	addrCh := make(chan string, 1)
	leaseCh := make(chan string, 64)
	matrixLog := &lockedBuf{}
	go func() {
		sc := bufio.NewScanner(matrixErr)
		for sc.Scan() {
			line := sc.Text()
			matrixLog.add(line)
			if a, ok := strings.CutPrefix(line, "soft matrix: listening on "); ok {
				addrCh <- a
			}
			// Structured fleet lines render through the text slog handler.
		if strings.Contains(line, `msg="lease granted"`) {
				select {
				case leaseCh <- line:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("campaign never announced its address\n%s", matrixLog)
	}

	// Worker A: started alone so it necessarily receives the first lease;
	// SIGKILLed — no goodbye — as soon as one is granted. The fleet must
	// re-lease whatever A held.
	workerA := exec.Command(bin, "work", "-addr", addr, "-name", "workerA", "-workers", "2")
	workerA.Stderr = io.Discard
	if err := workerA.Start(); err != nil {
		t.Fatalf("start worker A: %v", err)
	}
	select {
	case line := <-leaseCh:
		t.Logf("killing worker A after %q", line)
	case <-time.After(60 * time.Second):
		workerA.Process.Kill()
		t.Fatalf("no lease was ever granted to worker A\n%s", matrixLog)
	}
	workerA.Process.Kill()
	workerA.Wait()

	// Worker B finishes the campaign, including anything re-leased from A.
	workerB := exec.Command(bin, "work", "-addr", addr, "-name", "workerB", "-workers", "2")
	workerB.Stderr = io.Discard
	if err := workerB.Start(); err != nil {
		t.Fatalf("start worker B: %v", err)
	}
	defer func() {
		workerB.Process.Kill()
		workerB.Wait()
	}()

	if err := matrix.Wait(); err != nil {
		t.Fatalf("soft matrix failed: %v\n%s", err, matrixLog)
	}

	// Cells match individual explores byte for byte (wall clock aside).
	for _, cell := range cellNames {
		want, err := os.ReadFile(filepath.Join(dir, cell+".explore"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(cellsDir, cell+".results"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(normalizeElapsed(t, got), normalizeElapsed(t, want)) {
			t.Errorf("cell %s differs from individual soft explore\n--- campaign log ---\n%s", cell, matrixLog)
		}
	}

	// Campaign report matches the fleetless sequential reference exactly —
	// the worker kill is invisible in the output.
	wantReport, err := os.ReadFile(seqReport)
	if err != nil {
		t.Fatal(err)
	}
	gotReport, err := os.ReadFile(distReport)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotReport, wantReport) {
		t.Fatalf("fleet campaign report differs from fleetless run\n--- campaign log ---\n%s", matrixLog)
	}

	// Warm re-run: every cell served from the store, no fleet, identical
	// report bytes.
	warmReport := filepath.Join(dir, "warm.report")
	warm := exec.Command(bin, "matrix", "-agents", agents, "-tests", tests,
		"-store", storeDir, "-code-version", "e2e", "-o", warmReport)
	warmOut, err := warm.CombinedOutput()
	if err != nil {
		t.Fatalf("warm soft matrix: %v\n%s", err, warmOut)
	}
	if !strings.Contains(string(warmOut), "(0 explored, 4 cached)") {
		t.Errorf("warm run did not hit the store for every cell:\n%s", warmOut)
	}
	warmBytes, err := os.ReadFile(warmReport)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warmBytes, wantReport) {
		t.Fatal("warm campaign report differs")
	}

	// The campaign log should witness the kill (re-queue) unless A
	// finished implausibly fast.
	if !strings.Contains(matrixLog.String(), "re-queued") {
		t.Logf("note: worker A finished its lease before the kill landed (re-lease path covered by internal tests)")
	}
}
