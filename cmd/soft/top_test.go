package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/soft-testing/soft/internal/obs"
)

// topExposition is a hand-written scrape body in the exact shape
// WritePrometheus emits: cumulative power-of-two buckets, _sum/_count
// pairs, gauges and counters as bare integers.
const topExposition = `# TYPE soft_campaignd_jobs_queued gauge
soft_campaignd_jobs_queued 3
# TYPE soft_campaignd_jobs_running gauge
soft_campaignd_jobs_running 2
# TYPE soft_fleet_lease_rtt_ns histogram
soft_fleet_lease_rtt_ns_bucket{le="0"} 0
soft_fleet_lease_rtt_ns_bucket{le="1048575"} 4
soft_fleet_lease_rtt_ns_bucket{le="2097151"} 10
soft_fleet_lease_rtt_ns_bucket{le="+Inf"} 10
soft_fleet_lease_rtt_ns_sum 12345678
soft_fleet_lease_rtt_ns_count 10
# TYPE soft_fleet_paths_completed_total counter
soft_fleet_paths_completed_total 4321
# TYPE soft_fleet_workers_connected gauge
soft_fleet_workers_connected 2
`

func TestParsePromReconstructsHistograms(t *testing.T) {
	s, err := parseProm(strings.NewReader(topExposition))
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int64{
		"soft_fleet_workers_connected":     2,
		"soft_campaignd_jobs_queued":       3,
		"soft_campaignd_jobs_running":      2,
		"soft_fleet_paths_completed_total": 4321,
	} {
		if got := s.values[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	h, ok := s.hists["soft_fleet_lease_rtt_ns"]
	if !ok {
		t.Fatal("lease RTT histogram not reconstructed")
	}
	if got := h.Count(); got != 10 {
		t.Fatalf("histogram count = %d, want 10", got)
	}
	if h.Sum != 12345678 {
		t.Fatalf("histogram sum = %d, want 12345678", h.Sum)
	}
	// Bucket bound 1048575 = 2^20-1 is bucket 20; 2097151 = 2^21-1 is 21.
	// Cumulative 4 then 10 means per-bucket counts 4 and 6.
	if h.Counts[20] != 4 || h.Counts[21] != 6 {
		t.Fatalf("per-bucket counts [20]=%d [21]=%d, want 4 and 6", h.Counts[20], h.Counts[21])
	}
	// p50 rank falls in bucket 21 → the quantile is that bucket's bound.
	if got := h.Quantile(0.5); got != obs.BucketBound(21) {
		t.Fatalf("p50 = %d, want %d", got, obs.BucketBound(21))
	}
	// The histogram's _sum/_count series must not leak into plain values.
	if _, leaked := s.values["soft_fleet_lease_rtt_ns_count"]; leaked {
		t.Error("_count series leaked into plain values")
	}
	if _, leaked := s.values["soft_fleet_lease_rtt_ns_sum"]; leaked {
		t.Error("_sum series leaked into plain values")
	}
}

// TestTopOnceSnapshot drives `soft top -once` against a fake service and
// asserts the dashboard renders every headline row from one scrape.
func TestTopOnceSnapshot(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(topExposition))
	}))
	defer ts.Close()

	stdout, stderr, code := runCLI(t, "top", "-service", ts.URL, "-once")
	if code != 0 {
		t.Fatalf("soft top -once: exit %d\n%s", code, stderr)
	}
	for _, want := range []string{
		"workers connected", "jobs queued", "jobs running",
		"paths completed", "4321", "lease RTT", "p50", "p99",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("top output misses %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "\x1b[") {
		t.Error("-once output carries ANSI clear sequences")
	}
	// Solve latency never appeared in the scrape: the row must be absent
	// rather than rendered with zeros.
	if strings.Contains(stdout, "solve latency") {
		t.Errorf("absent metric rendered:\n%s", stdout)
	}
}

// TestTopRejectsBadFlags pins the usage errors.
func TestTopRejectsBadFlags(t *testing.T) {
	if _, _, code := runCLI(t, "top", "-interval", "-1s", "-once"); code != 2 {
		t.Fatalf("negative -interval: exit %d, want 2", code)
	}
	if _, _, code := runCLI(t, "top", "extra"); code != 2 {
		t.Fatalf("stray argument: exit %d, want 2", code)
	}
}
