package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScenarioCLI drives the scenario surface of the CLI: the listing,
// explore -scenario (with determinism across worker counts on the byte
// level), the bench-JSON merge, and a matrix with scenario columns warmed
// through a store.
func TestScenarioCLI(t *testing.T) {
	dir := t.TempDir()

	stdout, stderr, code := runCLI(t, "scenarios")
	if code != 0 {
		t.Fatalf("soft scenarios: exit %d\n%s", code, stderr)
	}
	for _, want := range []string{"Add Modify", "Netplugin VXLAN", "gen:0 .."} {
		if !strings.Contains(stdout, want) {
			t.Errorf("scenarios listing misses %q:\n%s", want, stdout)
		}
	}

	// explore -scenario, sequential vs parallel: byte-identical results.
	seqOut := filepath.Join(dir, "seq.results")
	parOut := filepath.Join(dir, "par.results")
	bench := filepath.Join(dir, "bench.json")
	if _, stderr, code := runCLI(t, "explore", "-scenario", "Add Delete Probe", "-workers", "1", "-o", seqOut); code != 0 {
		t.Fatalf("explore -scenario -workers 1: exit %d\n%s", code, stderr)
	}
	if _, stderr, code := runCLI(t, "explore", "-scenario", "Add Delete Probe", "-workers", "4",
		"-bench-json", bench, "-o", parOut); code != 0 {
		t.Fatalf("explore -scenario -workers 4: exit %d\n%s", code, stderr)
	}
	seq, err := os.ReadFile(seqOut)
	if err != nil {
		t.Fatal(err)
	}
	par, err := os.ReadFile(parOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(normalizeElapsed(t, seq)) != string(normalizeElapsed(t, par)) {
		t.Fatal("scenario exploration differs between -workers 1 and -workers 4")
	}

	// A baseline run of the same scenario fills the other half of the
	// incremental before/after object.
	if _, stderr, code := runCLI(t, "explore", "-scenario", "Add Delete Probe", "-workers", "4",
		"-incremental=false", "-bench-json", bench, "-o", os.DevNull); code != 0 {
		t.Fatalf("explore -incremental=false: exit %d\n%s", code, stderr)
	}

	var benchDoc struct {
		Schema       string `json:"schema"`
		ScenarioCold map[string]struct {
			SolverStats *struct {
				AssumptionSolves int64 `json:"assumption_solves"`
				FullSolves       int64 `json:"full_solves"`
			} `json:"solver_stats"`
		} `json:"scenario_cold"`
		ScenarioFamilies map[string]struct {
			Runs  int `json:"runs"`
			Paths int `json:"paths"`
		} `json:"scenario_families"`
		Incremental map[string]struct {
			Workers int `json:"workers"`
		} `json:"incremental"`
	}
	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &benchDoc); err != nil {
		t.Fatalf("bench JSON: %v\n%s", err, data)
	}
	coldEntry, ok := benchDoc.ScenarioCold["Add Delete Probe/w4"]
	if !ok {
		t.Fatalf("bench JSON misses scenario_cold[\"Add Delete Probe/w4\"]:\n%s", data)
	}
	// The default explore mode is incremental: the run must have been
	// answered by assumption solves, never per-path full solves.
	if coldEntry.SolverStats == nil || coldEntry.SolverStats.AssumptionSolves == 0 || coldEntry.SolverStats.FullSolves != 0 {
		t.Fatalf("scenario_cold solver_stats not from an incremental run:\n%s", data)
	}
	if fam, ok := benchDoc.ScenarioFamilies["Add Delete Probe"]; !ok || fam.Runs == 0 || fam.Paths == 0 {
		t.Fatalf("bench JSON misses scenario_families[\"Add Delete Probe\"]:\n%s", data)
	}
	if inc, ok := benchDoc.Incremental["Add Delete Probe/w4"]; !ok || inc.Workers != 4 {
		t.Fatalf("bench JSON misses incremental[\"Add Delete Probe/w4\"]:\n%s", data)
	}

	// Flag validation.
	if _, stderr, code := runCLI(t, "explore", "-scenario", "no such"); code != 2 || !strings.Contains(stderr, "unknown scenario") {
		t.Fatalf("explore -scenario bogus: exit %d\n%s", code, stderr)
	}
	if _, stderr, code := runCLI(t, "explore", "-scenario", "Add Modify", "-test", "Packet Out"); code != 2 || !strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("explore -scenario -test: exit %d\n%s", code, stderr)
	}
	// -bench-json also accepts plain Table 1 test runs, keyed by test name
	// (the bench-incremental Makefile target records FlowMod this way).
	if _, stderr, code := runCLI(t, "explore", "-test", "Concrete", "-workers", "1",
		"-bench-json", bench, "-o", os.DevNull); code != 0 {
		t.Fatalf("explore -test -bench-json: exit %d\n%s", code, stderr)
	}
	testBench, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(testBench), `"Concrete/w1"`) {
		t.Fatalf("bench JSON misses test-keyed entry \"Concrete/w1\":\n%s", testBench)
	}
	if _, stderr, code := runCLI(t, "matrix", "-scenarios", "no such"); code != 2 || !strings.Contains(stderr, "unknown scenario") {
		t.Fatalf("matrix -scenarios bogus: exit %d\n%s", code, stderr)
	}

	// A matrix with a scenario column: cold run populates the store, warm
	// re-run hits the cache for every cell, reports byte-identical.
	storeDir := filepath.Join(dir, "store")
	coldReport := filepath.Join(dir, "cold.report")
	warmReport := filepath.Join(dir, "warm.report")
	args := []string{
		"matrix", "-agents", "ref,ovs", "-tests", "Stats Request",
		"-scenarios", "Add Modify", "-store", storeDir, "-code-version", "cli-test",
	}
	stdout, stderr, code = runCLI(t, append(args, "-o", coldReport)...)
	if code != 0 {
		t.Fatalf("cold matrix with scenarios: exit %d\n%s", code, stderr)
	}
	for _, want := range []string{
		"4 cells (4 explored, 0 cached)",
		"cell ref / Add Modify:",
		"check Add Modify: ref vs ovs:",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("cold matrix output misses %q:\n%s", want, stdout)
		}
	}
	stdout, stderr, code = runCLI(t, append(args, "-o", warmReport)...)
	if code != 0 {
		t.Fatalf("warm matrix with scenarios: exit %d\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "4 cells (0 explored, 4 cached)") {
		t.Errorf("warm matrix did not hit the cache for every cell:\n%s", stdout)
	}
	cold, err := os.ReadFile(coldReport)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := os.ReadFile(warmReport)
	if err != nil {
		t.Fatal(err)
	}
	if string(cold) != string(warm) {
		t.Fatal("warm scenario matrix report differs from cold run")
	}
}
