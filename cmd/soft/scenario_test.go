package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScenarioCLI drives the scenario surface of the CLI: the listing,
// explore -scenario (with determinism across worker counts on the byte
// level), the bench-JSON merge, and a matrix with scenario columns warmed
// through a store.
func TestScenarioCLI(t *testing.T) {
	dir := t.TempDir()

	stdout, stderr, code := runCLI(t, "scenarios")
	if code != 0 {
		t.Fatalf("soft scenarios: exit %d\n%s", code, stderr)
	}
	for _, want := range []string{"Add Modify", "Netplugin VXLAN", "gen:0 .."} {
		if !strings.Contains(stdout, want) {
			t.Errorf("scenarios listing misses %q:\n%s", want, stdout)
		}
	}

	// explore -scenario, sequential vs parallel: byte-identical results.
	seqOut := filepath.Join(dir, "seq.results")
	parOut := filepath.Join(dir, "par.results")
	bench := filepath.Join(dir, "bench.json")
	if _, stderr, code := runCLI(t, "explore", "-scenario", "Add Delete Probe", "-workers", "1", "-o", seqOut); code != 0 {
		t.Fatalf("explore -scenario -workers 1: exit %d\n%s", code, stderr)
	}
	if _, stderr, code := runCLI(t, "explore", "-scenario", "Add Delete Probe", "-workers", "4",
		"-bench-json", bench, "-o", parOut); code != 0 {
		t.Fatalf("explore -scenario -workers 4: exit %d\n%s", code, stderr)
	}
	seq, err := os.ReadFile(seqOut)
	if err != nil {
		t.Fatal(err)
	}
	par, err := os.ReadFile(parOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(normalizeElapsed(t, seq)) != string(normalizeElapsed(t, par)) {
		t.Fatal("scenario exploration differs between -workers 1 and -workers 4")
	}

	var benchDoc struct {
		Schema       string                     `json:"schema"`
		ScenarioCold map[string]json.RawMessage `json:"scenario_cold"`
	}
	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &benchDoc); err != nil {
		t.Fatalf("bench JSON: %v\n%s", err, data)
	}
	if benchDoc.ScenarioCold["Add Delete Probe/w4"] == nil {
		t.Fatalf("bench JSON misses scenario_cold[\"Add Delete Probe/w4\"]:\n%s", data)
	}

	// Flag validation.
	if _, stderr, code := runCLI(t, "explore", "-scenario", "no such"); code != 2 || !strings.Contains(stderr, "unknown scenario") {
		t.Fatalf("explore -scenario bogus: exit %d\n%s", code, stderr)
	}
	if _, stderr, code := runCLI(t, "explore", "-scenario", "Add Modify", "-test", "Packet Out"); code != 2 || !strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("explore -scenario -test: exit %d\n%s", code, stderr)
	}
	if _, stderr, code := runCLI(t, "explore", "-bench-json", bench); code != 2 || !strings.Contains(stderr, "requires -scenario") {
		t.Fatalf("explore -bench-json without -scenario: exit %d\n%s", code, stderr)
	}
	if _, stderr, code := runCLI(t, "matrix", "-scenarios", "no such"); code != 2 || !strings.Contains(stderr, "unknown scenario") {
		t.Fatalf("matrix -scenarios bogus: exit %d\n%s", code, stderr)
	}

	// A matrix with a scenario column: cold run populates the store, warm
	// re-run hits the cache for every cell, reports byte-identical.
	storeDir := filepath.Join(dir, "store")
	coldReport := filepath.Join(dir, "cold.report")
	warmReport := filepath.Join(dir, "warm.report")
	args := []string{
		"matrix", "-agents", "ref,ovs", "-tests", "Stats Request",
		"-scenarios", "Add Modify", "-store", storeDir, "-code-version", "cli-test",
	}
	stdout, stderr, code = runCLI(t, append(args, "-o", coldReport)...)
	if code != 0 {
		t.Fatalf("cold matrix with scenarios: exit %d\n%s", code, stderr)
	}
	for _, want := range []string{
		"4 cells (4 explored, 0 cached)",
		"cell ref / Add Modify:",
		"check Add Modify: ref vs ovs:",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("cold matrix output misses %q:\n%s", want, stdout)
		}
	}
	stdout, stderr, code = runCLI(t, append(args, "-o", warmReport)...)
	if code != 0 {
		t.Fatalf("warm matrix with scenarios: exit %d\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "4 cells (0 explored, 4 cached)") {
		t.Errorf("warm matrix did not hit the cache for every cell:\n%s", stdout)
	}
	cold, err := os.ReadFile(coldReport)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := os.ReadFile(warmReport)
	if err != nil {
		t.Fatal(err)
	}
	if string(cold) != string(warm) {
		t.Fatal("warm scenario matrix report differs from cold run")
	}
}
