package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/soft-testing/soft"
	"github.com/soft-testing/soft/internal/bitblast"
	"github.com/soft-testing/soft/internal/dist"
	"github.com/soft-testing/soft/internal/obs"
	"github.com/soft-testing/soft/internal/store"
)

func matrixCmd() *command {
	return &command{
		name:     "matrix",
		synopsis: "run a campaign: explore every (agent, test) cell, crosscheck every agent pair",
		run:      runMatrix,
	}
}

// splitList parses a comma-separated flag value, trimming whitespace and
// dropping empties. An empty value means "all".
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseShardDepth understands the -shard-depth flag's three forms: "" (the
// dist default), "auto" (adaptive balancing), or an integer depth.
func parseShardDepth(s string) (depth int, adaptive bool, err error) {
	switch s {
	case "", "0":
		return 0, false, nil
	case "auto":
		return 0, true, nil
	}
	d, err := strconv.Atoi(s)
	if err != nil || d < 0 {
		return 0, false, fmt.Errorf("invalid -shard-depth %q (want an integer or \"auto\")", s)
	}
	return d, false, nil
}

func runMatrix(e *env, args []string) error {
	fs := newFlags(e, "matrix")
	agentsFlag := fs.String("agents", "", "comma-separated agent names (default: all registered; see 'soft agents')")
	testsFlag := fs.String("tests", "", "comma-separated Table 1 test names (default: the whole suite; see 'soft tests')")
	scenariosFlag := fs.String("scenarios", "", "comma-separated scenario names to add as matrix columns (\"all\" = every registered scenario; accepts gen:<index>)")
	addr := fs.String("addr", "", "listen for a soft-work fleet on this TCP address (use :0 for an ephemeral port); empty explores in-process")
	workers := fs.Int("workers", 0, "in-process parallelism: exploration workers per cell (fleetless) and crosscheck solver workers (0 = GOMAXPROCS)")
	maxPaths := fs.Int("max-paths", 0, "cap on explored paths per cell (0 = default); campaign truncation is canonical")
	models := fs.Bool("models", true, "extract a concrete input example per path")
	clauseSharing := fs.Bool("clause-sharing", false, "enable learned-clause sharing inside each cell's exploration")
	incremental := fs.Bool("incremental", true, "explore cells on per-worker assumption-stack solver sessions (results are byte-identical either way)")
	merge := fs.Bool("merge", false, "enable diamond state merging inside each cell's exploration (implies -incremental)")
	storeDir := fs.String("store", "", "result-store directory: cache cell results and groupings, skip unchanged cells on re-runs")
	codeVersion := fs.String("code-version", "", "override the cache key's code version (default: the binary's VCS build stamp)")
	storeMigrate := fs.Bool("store-migrate", false, "re-stamp a store recorded under a different code version instead of refusing it")
	service := fs.String("service", "", "run the campaign on this campaign service (base URL; see 'soft campaignd') instead of in-process")
	tenant := fs.String("tenant", "", "tenant name for -service jobs (default \"default\")")
	shardDepth := fs.String("shard-depth", "", "fleet frontier split depth: an integer, or \"auto\" for progress-driven balancing")
	leaseTimeout := fs.Duration("lease-timeout", 0, "re-offer a fleet shard not completed in this long (0 = default, negative = never)")
	crossCheck := fs.Bool("crosscheck", true, "run phase 2 over every agent pair per test (false: explore and cache cells only)")
	budget := fs.Duration("budget", 0, "time budget per pair check (0 = unlimited; a budget can make checks partial and reports non-reproducible)")
	resultsDir := fs.String("results-dir", "", "also write each cell's results file into this directory")
	out := fs.String("o", "", "write the canonical campaign report to this file (byte-identical across reruns)")
	benchJSON := fs.String("bench-json", "", "merge this run's throughput metrics (cells/sec, cache-hit rate) into this JSON file as its cold or warm pass")
	benchPass := fs.String("bench-pass", "auto", "which -bench-json pass this run is: cold, warm, or auto (classify by cache hits)")
	benchDist := fs.Int("bench-dist", 0, "record this fleet run's scaling metrics (paths/sec, lease-RTT quantiles) under dist_scaling/w<N> of -bench-json instead of a cold/warm pass (N = worker process count)")
	traceOut := fs.String("trace", "", "write a Chrome-trace-event JSON of this campaign's spans to this file (load in Perfetto; results are byte-identical either way)")
	timeout := fs.Duration("timeout", 0, "wall-clock limit; on expiry the campaign aborts")
	progress := fs.Bool("progress", false, "report fleet lifecycle and cell/check progress on stderr")
	verbose := fs.Bool("v", false, "report cache, fleet, and solver statistics on stderr")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}

	agents := splitList(*agentsFlag)
	tests := splitList(*testsFlag)
	// Validate names up front so mistakes are usage errors (exit 2), as in
	// every other subcommand.
	for _, a := range agents {
		if _, err := soft.AgentByName(a); err != nil {
			return usageError{err}
		}
	}
	for _, t := range tests {
		if _, ok := soft.TestByName(t); !ok {
			return usagef("unknown test %q (run 'soft tests')", t)
		}
	}
	var scenarios []string
	if *scenariosFlag == "all" {
		scenarios = soft.ScenarioNames()
	} else {
		scenarios = splitList(*scenariosFlag)
		for _, sc := range scenarios {
			if _, ok := soft.ScenarioByName(sc); !ok {
				return usagef("unknown scenario %q (run 'soft scenarios')", sc)
			}
		}
	}
	depth, adaptive, err := parseShardDepth(*shardDepth)
	if err != nil {
		return usageError{err}
	}
	switch *benchPass {
	case "auto", "cold", "warm":
	default:
		return usagef("invalid -bench-pass %q (want cold, warm, or auto)", *benchPass)
	}
	if *benchDist > 0 && *benchJSON == "" {
		return usagef("-bench-dist needs -bench-json: the scaling point has nowhere to go")
	}
	if *service != "" {
		// A service-side campaign owns its own store and fleet; the
		// client-side equivalents would silently do nothing.
		for flagName, set := range map[string]bool{
			"-store": *storeDir != "", "-addr": *addr != "", "-results-dir": *resultsDir != "",
		} {
			if set {
				return usagef("%s cannot be combined with -service: the campaign service owns the store and fleet (and reports carry no raw results)", flagName)
			}
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := []soft.Option{
		soft.WithScenarios(scenarios...),
		soft.WithWorkers(*workers),
		soft.WithMaxPaths(*maxPaths),
		soft.WithModels(*models),
		soft.WithClauseSharing(*clauseSharing),
		soft.WithIncrementalSolver(*incremental),
		soft.WithStateMerging(*merge),
		soft.WithShardDepth(depth),
		soft.WithAdaptiveShards(adaptive),
		soft.WithLeaseTimeout(*leaseTimeout),
		soft.WithCrossCheck(*crossCheck),
		soft.WithBudget(*budget),
	}
	if *storeDir != "" {
		// Refuse (exit 2) a store stamped for a different code version
		// before any work happens — reusing it would miss every entry, or
		// worse, collide when both stamps are the "unversioned" fallback.
		st, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		cv := *codeVersion
		if cv == "" {
			cv = store.DefaultCodeVersion()
		}
		if err := ensureStoreVersion(st, cv, *storeMigrate); err != nil {
			return err
		}
		opts = append(opts, soft.WithStore(*storeDir))
	}
	if *codeVersion != "" {
		opts = append(opts, soft.WithCodeVersion(*codeVersion))
	}
	if *service != "" {
		opts = append(opts, soft.WithCampaignService(*service))
		if *tenant != "" {
			opts = append(opts, soft.WithTenant(*tenant))
		}
	}
	if *addr != "" {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		// The chosen address goes out before any worker could need it —
		// e2e harnesses and humans alike parse this line to start workers.
		fmt.Fprintf(e.stderr, "soft matrix: listening on %s\n", ln.Addr())
		opts = append(opts, soft.WithFleetListener(ln))
	}
	if *progress {
		opts = append(opts, soft.WithLog(e.stderr))
		var mu sync.Mutex
		var last time.Time
		opts = append(opts, soft.WithProgress(func(ev soft.Event) {
			mu.Lock()
			defer mu.Unlock()
			if ev.Done < ev.Total && time.Since(last) < 250*time.Millisecond {
				return
			}
			last = time.Now()
			fmt.Fprintf(e.stderr, "soft matrix: %d/%d work units...\n", ev.Done, ev.Total)
		}))
	}

	var flushTrace func() error
	if *traceOut != "" {
		flushTrace = startTrace(*traceOut)
	}
	// Snapshot the process-global solve-latency and lease-RTT histograms
	// around the run so the bench file records this campaign's quantiles,
	// not the process's.
	latBefore := bitblast.MSolveLatency.Snapshot()
	rttBefore := dist.LeaseRTTSnapshot()
	start := time.Now()
	rep, err := soft.RunMatrix(ctx, agents, tests, opts...)
	if flushTrace != nil {
		if ferr := flushTrace(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if err != nil {
		return err
	}
	solveLat := bitblast.MSolveLatency.Snapshot().Sub(latBefore)
	leaseRTT := dist.LeaseRTTSnapshot().Sub(rttBefore)

	// Human-readable summary: deterministic content plus run annotations
	// (cache markers) that describe this run, not the result.
	fmt.Fprintf(e.stdout, "matrix %s × %s: %d cells (%d explored, %d cached)\n",
		strings.Join(rep.Agents, ","), strings.Join(rep.Tests, ","),
		len(rep.Cells), rep.CacheMisses, rep.CacheHits)
	for i := range rep.Cells {
		c := &rep.Cells[i]
		mark := ""
		if c.CacheHit {
			mark = " [cached]"
		}
		if c.Truncated {
			mark += " [truncated]"
		}
		// The cell's summary fields work for local and service runs alike;
		// service reports carry no raw Result.
		fmt.Fprintf(e.stdout, "cell %s / %s: %d paths (coverage %.1f%% instr, %.1f%% branch)%s\n",
			c.Agent, c.Test, c.Paths, c.InstrPct, c.BranchPct, mark)
	}
	for i := range rep.Checks {
		c := &rep.Checks[i]
		partial := ""
		if c.Report.Partial {
			partial = " (partial)"
		}
		fmt.Fprintf(e.stdout, "check %s: %s vs %s: %d inconsistencies, ~%d root causes (%d×%d groups, %d queries)%s\n",
			c.Test, c.AgentA, c.AgentB, len(c.Report.Inconsistencies), c.Report.RootCauses(),
			c.GroupsA, c.GroupsB, c.Report.Queries, partial)
	}
	if *verbose {
		fmt.Fprintf(e.stderr, "soft matrix: result store: %d hits, %d misses; grouping cache: %d hits, %d misses\n",
			rep.CacheHits, rep.CacheMisses, rep.GroupCacheHits, rep.GroupCacheMisses)
		if fsStats := rep.FleetStats; fsStats != nil {
			fmt.Fprintf(e.stderr, "soft matrix: fleet: %d workers (%d rejected), %d jobs, %d leases (%d batched, %d shards), %d re-queues, %d expirations, %d splits (+%d shards), %d stale results\n",
				fsStats.WorkersJoined, fsStats.WorkersRejected, fsStats.JobsCompleted,
				fsStats.Leases, fsStats.BatchedLeases, fsStats.ShardsLeased,
				fsStats.Requeues, fsStats.Expirations, fsStats.Splits, fsStats.SplitShards,
				fsStats.StaleResults)
		}
		fmt.Fprintf(e.stderr, "soft matrix: %s\n", describeStats(rep.SolverStats, rep.BranchQueries))
		fmt.Fprintf(e.stderr, "soft matrix: campaign completed in %s\n", rep.Elapsed.Round(time.Millisecond))
	}

	if *resultsDir != "" {
		if err := os.MkdirAll(*resultsDir, 0o755); err != nil {
			return err
		}
		for i := range rep.Cells {
			c := &rep.Cells[i]
			path := filepath.Join(*resultsDir, cellFileName(c.Agent, c.Test))
			if err := writeResultFile(path, c); err != nil {
				return err
			}
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := rep.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *benchJSON != "" {
		if *benchDist > 0 {
			if err := mergeDistBench(*benchJSON, *benchDist, rep, time.Since(start), solveLat, leaseRTT); err != nil {
				return err
			}
		} else if err := writeBenchJSON(*benchJSON, *benchPass, rep, time.Since(start), solveLat); err != nil {
			return err
		}
	}
	return nil
}

// cellFileName renders a filesystem-safe per-cell results file name.
func cellFileName(agent, test string) string {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
				return r
			default:
				return '_'
			}
		}, s)
	}
	return clean(agent) + "--" + clean(test) + ".results"
}

func writeResultFile(path string, c *soft.MatrixCell) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Result.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchMetrics is one pass of the BENCH_matrix.json schema: the campaign
// throughput numbers tracked across PRs. CellsPerSec measures exploration
// throughput, so cached cells are excluded from its numerator — a cold
// pass that found stale cache entries must not look faster than one that
// explored everything. A fully cached pass (explored = 0) reports store
// lookup throughput over all cells instead.
type benchMetrics struct {
	Cells        int     `json:"cells"`
	Explored     int     `json:"explored"`
	Cached       int     `json:"cached"`
	Checks       int     `json:"checks"`
	Paths        int     `json:"paths"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	CellsPerSec  float64 `json:"cells_per_sec"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// SolverStats breaks the pass's solver work down (see benchSolverStats);
	// fully cached passes legitimately report all zeros.
	SolverStats *benchSolverStats `json:"solver_stats,omitempty"`
}

// benchSolverStats is the solver-side view of one bench pass: how the
// satisfiability decisions were made (assumption-stack session vs
// from-scratch per-path solver), how much structure was reused (activation
// cache, merge memo, hash-cons table), and the clause-exchange volume.
type benchSolverStats struct {
	Queries           int64 `json:"queries"`
	CacheHits         int64 `json:"cache_hits"`
	AssumptionSolves  int64 `json:"assumption_solves"`
	FullSolves        int64 `json:"full_solves"`
	ConstraintsReused int64 `json:"constraints_reused"`
	MergeHits         int64 `json:"merge_hits"`
	InternHits        int64 `json:"intern_hits"`
	ClauseExports     int64 `json:"clause_exports"`
	ClauseImports     int64 `json:"clause_imports"`
	// SolveLatencyP50Ns/P99Ns summarize the run's SAT solve-latency
	// histogram (power-of-two buckets: the quantile is an upper bound
	// within 2× of the true value). Zero when the pass did no local
	// solving — fully cached and service-side runs.
	SolveLatencyP50Ns int64 `json:"solve_latency_p50_ns,omitempty"`
	SolveLatencyP99Ns int64 `json:"solve_latency_p99_ns,omitempty"`
}

func toBenchSolverStats(st soft.SolverStats, lat obs.HistogramSnapshot) *benchSolverStats {
	b := &benchSolverStats{
		Queries:           st.Queries,
		CacheHits:         st.CacheHits,
		AssumptionSolves:  st.AssumptionSolves,
		FullSolves:        st.FullSolves,
		ConstraintsReused: st.ConstraintsReused,
		MergeHits:         st.MergeHits,
		InternHits:        st.InternHits,
		ClauseExports:     st.ClauseExports,
		ClauseImports:     st.ClauseImports,
	}
	if lat.Count() > 0 {
		b.SolveLatencyP50Ns = lat.Quantile(0.5)
		b.SolveLatencyP99Ns = lat.Quantile(0.99)
	}
	return b
}

// benchFile is the whole BENCH_matrix.json: both passes of the cold/warm
// pair, merged across the two `soft matrix -bench-json` invocations that
// produce them. (The old single-object schema recorded only whichever
// pass ran last — the warm numbers silently replaced the cold ones.)
type benchFile struct {
	Schema string        `json:"schema"`
	Cold   *benchMetrics `json:"cold,omitempty"`
	Warm   *benchMetrics `json:"warm,omitempty"`
	Mixed  *benchMetrics `json:"mixed,omitempty"`
	// ScenarioCold holds cold engine baselines from
	// `soft explore -scenario X -workers N -bench-json`, keyed
	// "<scenario>/w<N>" — raw paths/sec with no store in the loop (the
	// ROADMAP "honest performance trajectory" numbers). Only default-mode
	// runs (incremental solving, no merging) land here; explicit baseline
	// and merge runs go to the Incremental object instead. Additive to the
	// v2 schema: files without it parse unchanged.
	ScenarioCold map[string]*scenarioBenchMetrics `json:"scenario_cold,omitempty"`
	// ScenarioFamilies aggregates ScenarioCold per scenario across worker
	// counts: total paths and elapsed, and one paths/sec over the sums.
	// Individual sub-millisecond runs are pure timer noise — the family
	// aggregate is the number worth tracking for fast scenarios.
	ScenarioFamilies map[string]*scenarioFamilyMetrics `json:"scenario_families,omitempty"`
	// Incremental holds before/after pairs for the incremental solver
	// stack, keyed "<scenario>/w<N>": the same scenario run with
	// -incremental=false (baseline) and -incremental (or -merge), with the
	// speedup computed once both halves are in.
	Incremental map[string]*incrementalBenchMetrics `json:"incremental,omitempty"`
	// DistScaling holds fleet scaling points from
	// `soft matrix -addr ... -bench-dist N -bench-json`, keyed "w<N>" by
	// worker process count: campaign paths/sec plus the coordinator's
	// lease round-trip quantiles at that fleet width. Additive to the v2
	// schema: files without it parse unchanged.
	DistScaling map[string]*distBenchMetrics `json:"dist_scaling,omitempty"`
}

// scenarioBenchMetrics is one cold scenario exploration: pure engine
// throughput, no cache anywhere. PathsPerSec stays zero for runs faster
// than benchMinElapsed — a ratio over a sub-millisecond denominator is
// timer noise, not a throughput measurement (see ScenarioFamilies).
type scenarioBenchMetrics struct {
	Workers     int     `json:"workers"`
	Paths       int     `json:"paths"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	PathsPerSec float64 `json:"paths_per_sec,omitempty"`
	// TooFast marks a run under benchMinElapsed whose paths/sec was
	// deliberately not reported.
	TooFast     bool              `json:"too_fast,omitempty"`
	SolverStats *benchSolverStats `json:"solver_stats,omitempty"`
}

// scenarioFamilyMetrics aggregates every recorded worker count of one
// scenario: noise-resistant totals for scenarios whose individual runs are
// too fast to time.
type scenarioFamilyMetrics struct {
	Runs        int     `json:"runs"`
	Paths       int     `json:"paths"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	PathsPerSec float64 `json:"paths_per_sec,omitempty"`
}

// incrementalBenchMetrics is one before/after cell of the incremental
// bench: the same scenario and worker count run with the per-path solver
// baseline and with the assumption-stack session stack.
type incrementalBenchMetrics struct {
	Workers                int     `json:"workers"`
	Paths                  int     `json:"paths"`
	BaselinePathsPerSec    float64 `json:"baseline_paths_per_sec,omitempty"`
	IncrementalPathsPerSec float64 `json:"incremental_paths_per_sec,omitempty"`
	// Speedup is incremental over baseline, present once both halves ran.
	Speedup float64 `json:"speedup,omitempty"`
}

// distBenchMetrics is one fleet-width point of the distributed scaling
// bench: the same FlowMod matrix driven through a real TCP fleet at N
// worker processes. Determinism makes every point's report byte-identical;
// only the timing moves.
type distBenchMetrics struct {
	Workers     int     `json:"workers"`
	Cells       int     `json:"cells"`
	Explored    int     `json:"explored"`
	Paths       int     `json:"paths"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	PathsPerSec float64 `json:"paths_per_sec,omitempty"`
	// LeaseRTTP50Ns/P99Ns summarize the coordinator's grant-to-first-
	// result round trip per shard (power-of-two buckets: quantiles are
	// upper bounds within 2×). Zero when the run granted no leases.
	LeaseRTTP50Ns int64             `json:"lease_rtt_p50_ns,omitempty"`
	LeaseRTTP99Ns int64             `json:"lease_rtt_p99_ns,omitempty"`
	Leases        int64             `json:"leases,omitempty"`
	SolverStats   *benchSolverStats `json:"solver_stats,omitempty"`
}

// mergeDistBench merges one fleet-width scaling point into the bench file
// (same read-modify-write shape as writeBenchJSON, same schema).
func mergeDistBench(path string, workers int, rep *soft.MatrixReport, elapsed time.Duration, solveLat, leaseRTT obs.HistogramSnapshot) error {
	paths := 0
	for i := range rep.Cells {
		paths += rep.Cells[i].Paths
	}
	m := &distBenchMetrics{
		Workers:     workers,
		Cells:       len(rep.Cells),
		Explored:    rep.CacheMisses,
		Paths:       paths,
		ElapsedSec:  elapsed.Seconds(),
		SolverStats: toBenchSolverStats(rep.SolverStats, solveLat),
	}
	if s := elapsed.Seconds(); s > 0 && elapsed >= benchMinElapsed {
		m.PathsPerSec = float64(paths) / s
	}
	if n := leaseRTT.Count(); n > 0 {
		m.Leases = n
		m.LeaseRTTP50Ns = leaseRTT.Quantile(0.5)
		m.LeaseRTTP99Ns = leaseRTT.Quantile(0.99)
	}

	var f benchFile
	if existing, err := os.ReadFile(path); err == nil {
		var parsed benchFile
		if json.Unmarshal(existing, &parsed) == nil && parsed.Schema == benchSchema {
			f = parsed
		}
	}
	f.Schema = benchSchema
	if f.DistScaling == nil {
		f.DistScaling = map[string]*distBenchMetrics{}
	}
	f.DistScaling[fmt.Sprintf("w%d", workers)] = m
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchMinElapsed is the shortest run whose paths/sec is worth reporting;
// anything faster is dominated by timer granularity and scheduler jitter.
const benchMinElapsed = time.Millisecond

// mergeScenarioBench merges one cold scenario run into the bench file
// (same read-modify-write shape as writeBenchJSON, same schema).
// Default-mode runs (incremental, no merge) refresh scenario_cold and the
// family aggregates; every run also lands in its half of the incremental
// before/after object.
func mergeScenarioBench(path, scenarioName string, workers int, incremental, merge bool, res *soft.Result, solveLat obs.HistogramSnapshot) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pathsPerSec := 0.0
	tooFast := res.Elapsed < benchMinElapsed
	if s := res.Elapsed.Seconds(); s > 0 && !tooFast {
		pathsPerSec = float64(len(res.Paths)) / s
	}

	var f benchFile
	if existing, err := os.ReadFile(path); err == nil {
		var parsed benchFile
		if json.Unmarshal(existing, &parsed) == nil && parsed.Schema == benchSchema {
			f = parsed
		}
	}
	f.Schema = benchSchema
	key := fmt.Sprintf("%s/w%d", scenarioName, workers)

	if incremental && !merge {
		if f.ScenarioCold == nil {
			f.ScenarioCold = map[string]*scenarioBenchMetrics{}
		}
		f.ScenarioCold[key] = &scenarioBenchMetrics{
			Workers:     workers,
			Paths:       len(res.Paths),
			ElapsedSec:  res.Elapsed.Seconds(),
			PathsPerSec: pathsPerSec,
			TooFast:     tooFast,
			SolverStats: toBenchSolverStats(res.SolverStats, solveLat),
		}
		f.ScenarioFamilies = aggregateFamilies(f.ScenarioCold)
	}

	if f.Incremental == nil {
		f.Incremental = map[string]*incrementalBenchMetrics{}
	}
	inc := f.Incremental[key]
	if inc == nil {
		inc = &incrementalBenchMetrics{Workers: workers}
		f.Incremental[key] = inc
	}
	inc.Paths = len(res.Paths)
	if incremental {
		inc.IncrementalPathsPerSec = pathsPerSec
	} else {
		inc.BaselinePathsPerSec = pathsPerSec
	}
	if inc.BaselinePathsPerSec > 0 && inc.IncrementalPathsPerSec > 0 {
		inc.Speedup = inc.IncrementalPathsPerSec / inc.BaselinePathsPerSec
	}

	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// aggregateFamilies recomputes the per-scenario totals from every recorded
// scenario_cold entry (keys are "<scenario>/w<N>").
func aggregateFamilies(cold map[string]*scenarioBenchMetrics) map[string]*scenarioFamilyMetrics {
	if len(cold) == 0 {
		return nil
	}
	fams := map[string]*scenarioFamilyMetrics{}
	for key, m := range cold {
		name := key
		if i := strings.LastIndex(key, "/w"); i >= 0 {
			name = key[:i]
		}
		fam := fams[name]
		if fam == nil {
			fam = &scenarioFamilyMetrics{}
			fams[name] = fam
		}
		fam.Runs++
		fam.Paths += m.Paths
		fam.ElapsedSec += m.ElapsedSec
	}
	for _, fam := range fams {
		if fam.ElapsedSec > 0 {
			fam.PathsPerSec = float64(fam.Paths) / fam.ElapsedSec
		}
	}
	return fams
}

const benchSchema = "soft-bench-matrix v2"

// classifyBenchPass resolves -bench-pass=auto from the run's cache
// counters: no hits is a cold pass, no misses (with at least one hit) a
// warm one, anything else mixed.
func classifyBenchPass(pass string, rep *soft.MatrixReport) string {
	if pass != "auto" {
		return pass
	}
	switch {
	case rep.CacheHits == 0:
		return "cold"
	case rep.CacheMisses == 0 && rep.CacheHits > 0:
		return "warm"
	default:
		return "mixed"
	}
}

func writeBenchJSON(path, pass string, rep *soft.MatrixReport, elapsed time.Duration, solveLat obs.HistogramSnapshot) error {
	paths := 0
	for i := range rep.Cells {
		paths += rep.Cells[i].Paths
	}
	m := &benchMetrics{
		Cells:      len(rep.Cells),
		Explored:   rep.CacheMisses,
		Cached:     rep.CacheHits,
		Checks:     len(rep.Checks),
		Paths:      paths,
		ElapsedSec: elapsed.Seconds(),
	}
	if s := elapsed.Seconds(); s > 0 {
		if rep.CacheMisses > 0 {
			m.CellsPerSec = float64(rep.CacheMisses) / s
		} else {
			m.CellsPerSec = float64(len(rep.Cells)) / s
		}
	}
	if len(rep.Cells) > 0 {
		m.CacheHitRate = float64(rep.CacheHits) / float64(len(rep.Cells))
	}
	m.SolverStats = toBenchSolverStats(rep.SolverStats, solveLat)

	// Merge with the passes already on disk so cold and warm runs build one
	// file between them; a file in the old flat schema is replaced.
	var f benchFile
	if existing, err := os.ReadFile(path); err == nil {
		var parsed benchFile
		if json.Unmarshal(existing, &parsed) == nil && parsed.Schema == benchSchema {
			f = parsed
		}
	}
	f.Schema = benchSchema
	switch classifyBenchPass(pass, rep) {
	case "cold":
		f.Cold = m
	case "warm":
		f.Warm = m
	default:
		f.Mixed = m
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
