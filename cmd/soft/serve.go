package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"github.com/soft-testing/soft"
)

func serveCmd() *command {
	return &command{
		name:     "serve",
		synopsis: "coordinate a distributed phase-1 run across soft-work processes",
		run:      runServe,
	}
}

func runServe(e *env, args []string) error {
	fs := newFlags(e, "serve")
	addr := fs.String("addr", "127.0.0.1:7473", "TCP address to listen on (use :0 for an ephemeral port)")
	agentName := fs.String("agent", "ref", "agent under test, by registry name (see 'soft agents'); workers resolve the same name")
	testName := fs.String("test", "Packet Out", "Table 1 test name (see 'soft tests')")
	out := fs.String("o", "", "output file (default stdout)")
	maxPaths := fs.Int("max-paths", 0, "cap on explored paths (0 = default); distributed truncation is canonical")
	models := fs.Bool("models", true, "extract a concrete input example per path")
	incremental := fs.Bool("incremental", true, "workers keep one assumption-stack solver session per exploration worker (results are byte-identical either way)")
	merge := fs.Bool("merge", false, "workers use diamond state merging (implies -incremental; results are byte-identical either way)")
	shardDepth := fs.String("shard-depth", "", "frontier split depth: an integer (forks deeper than this become worker shards), or \"auto\" for progress-driven balancing")
	leaseTimeout := fs.Duration("lease-timeout", 0, "re-offer a shard not completed in this long (0 = default, negative = never)")
	canonicalCut := fs.Bool("canonical-cut", true, "keep the canonically smallest max-paths paths instead of the first to complete")
	timeout := fs.Duration("timeout", 0, "wall-clock limit; on expiry the run aborts (distributed partial results are not deterministic)")
	metricsAddr := fs.String("metrics-addr", "", "also serve Prometheus text on http://<addr>/metrics while the run is live (use :0 for an ephemeral port)")
	pprofFlag := fs.Bool("pprof", false, "with -metrics-addr: also mount net/http/pprof under /debug/pprof/")
	traceOut := fs.String("trace", "", "write a Chrome-trace-event JSON of this run's spans — coordinator and workers merged — to this file (results are byte-identical either way)")
	logFormat := logFormatFlag(fs)
	progress := fs.Bool("progress", false, "report lease grants and exploration progress on stderr")
	verbose := fs.Bool("v", false, "report aggregated solver statistics (queries, cache hits, clause exchange) on stderr")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}

	// Validate the job before binding the socket: an unknown name is a
	// usage error (exit 2) here exactly as it is for `soft explore` —
	// workers will resolve the same registry names later.
	if _, err := soft.AgentByName(*agentName); err != nil {
		return usageError{err}
	}
	if _, ok := soft.TestByName(*testName); !ok {
		return usagef("unknown test %q (run 'soft tests')", *testName)
	}
	depth, adaptive, err := parseShardDepth(*shardDepth)
	if err != nil {
		return usageError{err}
	}
	logger, err := newCLILogger(e.stderr, *logFormat)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *pprofFlag && *metricsAddr == "" {
		return usagef("-pprof needs -metrics-addr: the profiler rides the metrics endpoint")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	// The chosen address goes out before any worker could need it — e2e
	// harnesses and humans alike parse this line to start workers.
	fmt.Fprintf(e.stderr, "soft serve: listening on %s\n", ln.Addr())

	if *metricsAddr != "" {
		// The observability endpoint lives on its own listener so the
		// coordinator's worker protocol socket stays protocol-pure. It dies
		// with the run; scrape it while the exploration is live.
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(e.stderr, "soft serve: metrics on http://%s/metrics\n", mln.Addr())
		msrv := &http.Server{Handler: newMetricsMux(*pprofFlag)}
		go msrv.Serve(mln)
		defer msrv.Close()
	}

	opts := []soft.Option{
		soft.WithMaxPaths(*maxPaths),
		soft.WithModels(*models),
		soft.WithIncrementalSolver(*incremental),
		soft.WithStateMerging(*merge),
		soft.WithShardDepth(depth),
		soft.WithAdaptiveShards(adaptive),
		soft.WithLeaseTimeout(*leaseTimeout),
		soft.WithCanonicalCut(*canonicalCut),
	}
	if *progress {
		opts = append(opts, soft.WithLogger(logger))
		var mu sync.Mutex
		var last time.Time
		opts = append(opts, soft.WithProgress(func(ev soft.Event) {
			mu.Lock()
			defer mu.Unlock()
			if ev.Stats == nil && time.Since(last) < 250*time.Millisecond {
				return
			}
			last = time.Now()
			fmt.Fprintf(e.stderr, "soft serve: %d paths...\n", ev.Done)
		}))
	}
	var flushTrace func() error
	if *traceOut != "" {
		// The trace file carries coordinator spans and every worker's
		// shipped segments, merged into one timeline (see internal/obs).
		flushTrace = startTrace(*traceOut)
	}
	// Version-mismatched workers never surface here: the coordinator
	// refuses them with a reject frame and keeps serving (the worker side
	// is what exits 2 — see runWork).
	res, err := soft.ServeListener(ctx, ln, *agentName, *testName, opts...)
	if flushTrace != nil {
		if ferr := flushTrace(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if err != nil {
		return err
	}

	mark := ""
	if res.Truncated {
		mark = " (max-paths: canonical cut)"
	}
	fmt.Fprintf(e.stderr, "%s / %s: %d paths in %s (coverage %.1f%% instr, %.1f%% branch)%s\n",
		res.Agent, res.Test, len(res.Paths), res.Elapsed.Round(time.Millisecond),
		res.InstrPct, res.BranchPct, mark)
	if *verbose {
		fmt.Fprintf(e.stderr, "soft serve: %s\n", describeStats(res.SolverStats, res.BranchQueries))
	}

	if *out == "" {
		return res.SerializedResult.Write(e.stdout)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := res.SerializedResult.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
