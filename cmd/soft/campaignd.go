package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"github.com/soft-testing/soft/internal/campaignd"
	"github.com/soft-testing/soft/internal/dist"
	"github.com/soft-testing/soft/internal/store"
)

func campaigndCmd() *command {
	return &command{
		name:     "campaignd",
		synopsis: "run the durable always-on campaign service (submit jobs with 'soft submit')",
		run:      runCampaignd,
	}
}

func runCampaignd(e *env, args []string) error {
	fs := newFlags(e, "campaignd")
	addr := fs.String("addr", "127.0.0.1:7130", "HTTP API address (use :0 for an ephemeral port)")
	storeDir := fs.String("store", "", "result-store directory (required): caches cell results and hosts the durable job journal")
	fleetAddr := fs.String("fleet-addr", "", "also listen for a soft-work fleet on this TCP address; every job's non-cached cells run on it")
	codeVersion := fs.String("code-version", "", "override the cache key's code version (default: the binary's VCS build stamp)")
	storeMigrate := fs.Bool("store-migrate", false, "re-stamp a store recorded under a different code version instead of refusing it")
	maxActive := fs.Int("max-active", 0, "concurrently running jobs (0 = default 2); queued jobs wait fair-share across tenants")
	retain := fs.Int("retain", 0, "keep only the newest N terminal job records, pruning older ones at startup and as jobs finish (0 = keep all)")
	workers := fs.Int("workers", 0, "in-process parallelism per job (0 = GOMAXPROCS)")
	shardDepth := fs.String("shard-depth", "", "fleet frontier split depth: an integer, or \"auto\" for progress-driven balancing")
	leaseTimeout := fs.Duration("lease-timeout", 0, "re-offer a fleet shard not completed in this long (0 = default, negative = never)")
	pprofFlag := fs.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/ on the API address")
	logFormat := logFormatFlag(fs)
	verbose := fs.Bool("v", false, "report job lifecycle and fleet events on stderr")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}
	if *storeDir == "" {
		return usagef("a -store directory is required: it holds the job journal and cell cache that make the service durable")
	}
	depth, adaptive, err := parseShardDepth(*shardDepth)
	if err != nil {
		return usageError{err}
	}
	logger, err := newCLILogger(e.stderr, *logFormat)
	if err != nil {
		return err
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	cv := *codeVersion
	if cv == "" {
		cv = store.DefaultCodeVersion()
	}
	if err := ensureStoreVersion(st, cv, *storeMigrate); err != nil {
		return err
	}

	cfg := campaignd.Config{
		Store:       st,
		CodeVersion: cv,
		MaxActive:   *maxActive,
		Retain:      *retain,
		Workers:     *workers,
		ShardDepth:  depth,
		Adaptive:    adaptive,
	}
	if *verbose {
		// Structured lifecycle lines (campaignd and fleet) go through the
		// slog handler; the sched layer's per-cell lines keep the legacy
		// plain writer.
		cfg.Logger = logger
		cfg.Log = e.stderr
	}

	var fleetLn net.Listener
	if *fleetAddr != "" {
		fleetLn, err = net.Listen("tcp", *fleetAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(e.stderr, "soft campaignd: fleet listening on %s\n", fleetLn.Addr())
		fleet := dist.NewFleet(fleetLn, dist.FleetConfig{
			LeaseTimeout: *leaseTimeout,
			Logger:       cfg.Logger,
			Log:          cfg.Log,
		})
		defer fleet.Close()
		cfg.Fleet = fleet
	}

	srv, err := campaignd.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The chosen address goes out before the first request could need it —
	// e2e harnesses and humans alike parse this line to find the API.
	fmt.Fprintf(e.stderr, "soft campaignd: listening on %s\n", ln.Addr())

	// SIGINT/SIGTERM shut down gracefully: running jobs are requeued in the
	// journal (not failed), so the next start resumes them warm. A SIGKILL
	// skips all of this and the journal replay recovers anyway.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv.Start(ctx)

	handler := srv.Handler()
	if *pprofFlag {
		// The API handler already serves GET /metrics; -pprof adds the
		// profiler on the same address behind an explicit opt-in.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		addPprof(mux)
		handler = mux
	}
	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(e.stderr, "soft campaignd: shutting down (running jobs are requeued)")
		httpSrv.Close()
		<-serveErr
		srv.Close()
		return nil
	case err := <-serveErr:
		srv.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// ensureStoreVersion refuses a store stamped for different code — silently
// reusing it would either miss every cache entry or, for stores populated
// by unstamped binaries, collide on the "unversioned" pseudo-version.
// Version skew is a usage error (exit 2): the fix is a flag, not a rerun.
func ensureStoreVersion(st *store.Store, codeVersion string, migrate bool) error {
	if migrate {
		return st.SetCodeVersion(codeVersion)
	}
	if err := st.EnsureCodeVersion(codeVersion); err != nil {
		if store.IsVersionSkew(err) {
			return usageError{err}
		}
		return err
	}
	return nil
}
