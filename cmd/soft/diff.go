package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/soft-testing/soft"
)

func diffCmd() *command {
	return &command{
		name:     "diff",
		synopsis: "run phase 2: crosscheck two results files for inconsistencies",
		run:      runDiff,
	}
}

// loadResults reads one phase-1 results file.
func loadResults(path string) (*soft.SerializedResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := soft.ReadResults(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

// warnPartial notes on stderr when a results file holds a partial path
// set: inconsistencies on the unexplored paths are invisible to the diff.
func warnPartial(e *env, path string, res *soft.SerializedResult) {
	if res.Truncated || res.Cancelled {
		fmt.Fprintf(e.stderr, "soft diff: note: %s is a partial result (%s exploration); inconsistencies on unexplored paths cannot be reported\n",
			path, partialCause(res))
	}
}

func partialCause(res *soft.SerializedResult) string {
	if res.Cancelled {
		return "cancelled"
	}
	return "truncated"
}

// groupCached groups a result, through the store's grouping cache when a
// store directory was given.
func groupCached(storeDir, codeVersion string, r *soft.SerializedResult) (*soft.Grouped, bool, error) {
	if storeDir == "" {
		return soft.GroupSerialized(r), false, nil
	}
	return soft.GroupCached(storeDir, codeVersion, r)
}

func hitMiss(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func runDiff(e *env, args []string) error {
	fs := newFlags(e, "diff")
	budget := fs.Duration("budget", 0, "time budget for the check (0 = unlimited)")
	reproduce := fs.Bool("reproduce", false, "render a reproducer message per inconsistency")
	workers := fs.Int("workers", 0, "parallel crosscheck workers (0 = GOMAXPROCS, 1 = sequential)")
	sharedCache := fs.Bool("shared-cache", true, "workers share one sharded query cache (false: per-worker copy-on-write clones)")
	storeDir := fs.String("store", "", "result-store directory: cache each file's grouping construction, keyed by result content and code version")
	codeVersion := fs.String("code-version", "", "override the grouping cache's code version (default: the binary's VCS build stamp; match soft matrix -code-version)")
	timeout := fs.Duration("timeout", 0, "hard wall-clock limit; on expiry the partial report is still printed")
	verbose := fs.Bool("v", false, "report solver statistics (queries, cache hits, clause exchange)")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return usagef("want exactly two results files, got %d (usage: soft diff [flags] a-results.txt b-results.txt)", fs.NArg())
	}
	ra, err := loadResults(fs.Arg(0))
	if err != nil {
		return err
	}
	rb, err := loadResults(fs.Arg(1))
	if err != nil {
		return err
	}
	warnPartial(e, fs.Arg(0), ra)
	warnPartial(e, fs.Arg(1), rb)
	ga, hitA, err := groupCached(*storeDir, *codeVersion, ra)
	if err != nil {
		return err
	}
	gb, hitB, err := groupCached(*storeDir, *codeVersion, rb)
	if err != nil {
		return err
	}
	if *verbose && *storeDir != "" {
		fmt.Fprintf(e.stderr, "soft diff: grouping cache: %s / %s\n", hitMiss(hitA), hitMiss(hitB))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rep, err := soft.CrossCheck(ctx, ga, gb,
		soft.WithBudget(*budget), soft.WithWorkers(*workers),
		soft.WithSharedCache(*sharedCache))
	if err != nil {
		return usageError{err}
	}

	partial := ""
	if rep.Cancelled {
		partial = " (timeout: partial)"
	} else if rep.Partial {
		partial = " (budget expired: partial)"
	}
	fmt.Fprintf(e.stdout, "%s vs %s on %s: %d inconsistencies, ~%d root causes, %d solver queries in %s%s\n",
		rep.AgentA, rep.AgentB, rep.Test, len(rep.Inconsistencies), rep.RootCauses(),
		rep.Queries, rep.Elapsed.Round(time.Millisecond), partial)
	if *verbose {
		fmt.Fprintf(e.stderr, "soft diff: %s\n", describeStats(rep.SolverStats, -1))
	}
	for k, inc := range rep.Inconsistencies {
		fmt.Fprintf(e.stdout, "\n#%d %s\n", k, inc)
		if *reproduce {
			t, ok := soft.TestByName(rep.Test)
			if !ok {
				continue
			}
			wires := soft.Reproduce(t, inc.Witness)
			labels := soft.DescribeReproducer(wires)
			for i, w := range wires {
				fmt.Fprintf(e.stdout, "  input %d (%s): %x\n", i, labels[i], w)
			}
		}
	}
	return nil
}

func groupCmd() *command {
	return &command{
		name:     "group",
		synopsis: "group a results file by distinct output behavior",
		run:      runGroup,
	}
}

func runGroup(e *env, args []string) error {
	fs := newFlags(e, "group")
	verbose := fs.Bool("v", false, "print each group's condition size")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("want exactly one results file, got %d (usage: soft group [-v] results.txt)", fs.NArg())
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	res, err := soft.ReadResults(f)
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	g := soft.GroupSerialized(res)
	partial := ""
	if res.Truncated || res.Cancelled {
		partial = fmt.Sprintf(" [%s exploration: partial]", partialCause(res))
	}
	fmt.Fprintf(e.stdout, "%s / %s: %d paths -> %d distinct output results (grouped in %s)%s\n",
		g.Agent, g.Test, len(res.Paths), len(g.Groups), g.Elapsed.Round(time.Microsecond), partial)
	for i, gr := range g.Groups {
		crash := ""
		if gr.Crashed {
			crash = "  [CRASH]"
		}
		fmt.Fprintf(e.stdout, "\n[%d] %d path(s)%s\n", i, gr.PathCount, crash)
		for _, line := range strings.Split(gr.Canonical, "\n") {
			fmt.Fprintf(e.stdout, "    %s\n", line)
		}
		if *verbose {
			fmt.Fprintf(e.stdout, "    condition: %d boolean ops\n", gr.Cond.Size())
		}
	}
	return nil
}
