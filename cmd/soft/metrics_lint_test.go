package main

import (
	"regexp"
	"testing"

	"github.com/soft-testing/soft/internal/obs"
)

// metricName is the fleet-wide naming convention: every metric is
// soft_-prefixed snake case, with the unit suffixed where one applies
// (_ns, _total, _bytes). The CLI binary links every package that
// registers metrics, so walking the default registry here lints the
// whole inventory.
var metricName = regexp.MustCompile(`^soft_[a-z0-9_]+$`)

// TestMetricNamesLint walks the process-global registry and fails on any
// name outside the convention — a misnamed metric would silently fork
// dashboards and `soft top`'s scrape keys.
func TestMetricNamesLint(t *testing.T) {
	names := obs.Default.Names()
	if len(names) == 0 {
		t.Fatal("no metrics registered — the registry walk is vacuous")
	}
	for _, name := range names {
		if !metricName.MatchString(name) {
			t.Errorf("metric %q does not match %s", name, metricName)
		}
	}
}

// TestMetricRegisteredOnce fails when any name was registered more than
// once: a second NewCounter/NewGauge/NewHistogram call for an existing
// name silently aliases the first metric, which is almost always a
// copy-paste bug (readers that need an existing metric should go through
// an accessor, e.g. dist.LeaseRTTSnapshot).
func TestMetricRegisteredOnce(t *testing.T) {
	for name, n := range obs.Default.Registrations() {
		if n != 1 {
			t.Errorf("metric %q registered %d times, want exactly 1", name, n)
		}
	}
}
