package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/soft-testing/soft"
	"github.com/soft-testing/soft/internal/obs"
)

// startTrace turns span tracing on and returns the flush function that
// stops the tracer and writes the run's Chrome-trace-event JSON to path
// (load it at ui.perfetto.dev or chrome://tracing). Tracing is
// observation-only: the result bytes are identical with or without it.
func startTrace(path string) func() error {
	tr := obs.StartTracing()
	return func() error {
		tr.Stop()
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tr.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}

// logFormatFlag registers the shared -log-format flag (see obs.NewLogger:
// "text" drops timestamps for stable greppable output, "json" emits one
// object per line for log pipelines).
func logFormatFlag(fs *flag.FlagSet) *string {
	return fs.String("log-format", obs.LogText, "structured log rendering: text or json")
}

// newCLILogger validates -log-format and builds the logger lifecycle
// lines render through.
func newCLILogger(w io.Writer, format string) (*slog.Logger, error) {
	if !obs.ValidLogFormat(format) {
		return nil, usagef("invalid -log-format %q (want text or json)", format)
	}
	return obs.NewLogger(w, format), nil
}

// newMetricsMux builds the standalone observability endpoint used by
// subcommands that have no API server of their own (`soft serve`):
// GET /metrics in Prometheus text format, plus the net/http/pprof
// handlers when withPprof is set.
func newMetricsMux(withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w)
	})
	if withPprof {
		addPprof(mux)
	}
	return mux
}

// addPprof mounts the net/http/pprof handlers on mux explicitly — the
// CLI never serves DefaultServeMux, so the package's init registrations
// alone would expose nothing.
func addPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func statsCmd() *command {
	return &command{
		name:     "stats",
		synopsis: "fetch a running service's live metrics (service-wide or per job)",
		run:      runStats,
	}
}

func runStats(e *env, args []string) error {
	fs := newFlags(e, "stats")
	service := serviceFlag(fs)
	job := fs.String("job", "", "print this job's timing metrics (GET /api/v1/jobs/<id>/metrics) instead of the service-wide registry")
	raw := fs.Bool("raw", false, "print the Prometheus exposition body verbatim (histogram buckets included)")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}
	if *job != "" {
		if *raw {
			return usagef("-raw applies to the service-wide registry, not -job JSON")
		}
		cl := soft.NewCampaignClient(*service)
		m, err := cl.Metrics(context.Background(), *job)
		if err != nil {
			return err
		}
		return printJobMetrics(e, m)
	}
	return printServiceMetrics(e, *service, *raw)
}

func printJobMetrics(e *env, m *soft.CampaignJobMetrics) error {
	tw := tabwriter.NewWriter(e.stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(tw, "job\t%s\n", m.Job)
	if m.Tenant != "" {
		fmt.Fprintf(tw, "tenant\t%s\n", m.Tenant)
	}
	fmt.Fprintf(tw, "state\t%s\n", m.State)
	fmt.Fprintf(tw, "queue-wait\t%s\n", time.Duration(m.QueueWaitSeconds*float64(time.Second)).Round(time.Second))
	fmt.Fprintf(tw, "run\t%s\n", time.Duration(m.RunSeconds*float64(time.Second)).Round(time.Second))
	fmt.Fprintf(tw, "restarts\t%d\n", m.Restarts)
	if m.Total > 0 {
		fmt.Fprintf(tw, "progress\t%d/%d work units\n", m.Done, m.Total)
	}
	fmt.Fprintf(tw, "inconsistencies\t%d\n", m.Inconsistencies)
	return tw.Flush()
}

// printServiceMetrics fetches <service>/metrics and renders it. The pretty
// view drops the per-bucket histogram series (the _sum/_count pair stays)
// so a human sees one line per metric; -raw is the scrape body unchanged.
func printServiceMetrics(e *env, service string, raw bool) error {
	url := strings.TrimRight(service, "/") + "/metrics"
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	if raw {
		for sc.Scan() {
			fmt.Fprintln(e.stdout, sc.Text())
		}
		return sc.Err()
	}
	tw := tabwriter.NewWriter(e.stdout, 2, 8, 2, ' ', 0)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || strings.Contains(line, "_bucket{") {
			continue
		}
		name, value, found := strings.Cut(line, " ")
		if !found {
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\n", name, value)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return tw.Flush()
}
