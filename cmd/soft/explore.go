package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/soft-testing/soft"
	"github.com/soft-testing/soft/internal/bitblast"
)

func exploreCmd() *command {
	return &command{
		name:     "explore",
		synopsis: "run phase 1: symbolically execute one agent on one test",
		run:      runExplore,
	}
}

func runExplore(e *env, args []string) error {
	fs := newFlags(e, "explore")
	agentName := fs.String("agent", "ref", "agent under test (see 'soft agents')")
	testName := fs.String("test", "Packet Out", "Table 1 test name (see 'soft tests')")
	scenarioName := fs.String("scenario", "", "scenario name instead of -test (see 'soft scenarios'; accepts gen:<index>)")
	out := fs.String("o", "", "output file (default stdout)")
	maxPaths := fs.Int("max-paths", 0, "cap on explored paths (0 = default)")
	models := fs.Bool("models", true, "extract a concrete input example per path")
	workers := fs.Int("workers", 0, "parallel exploration workers (0 = GOMAXPROCS, 1 = sequential)")
	clauseSharing := fs.Bool("clause-sharing", false, "share short learned clauses between path solvers (results are byte-identical either way)")
	incremental := fs.Bool("incremental", true, "keep one assumption-stack solver session per worker instead of a fresh solver per path (results are byte-identical either way)")
	merge := fs.Bool("merge", false, "enable diamond state merging on top of incremental solving (implies -incremental; results are byte-identical either way)")
	canonicalCut := fs.Bool("canonical-cut", false, "make max-paths truncation canonical: keep the canonically smallest paths so truncated runs are reproducible across worker counts")
	timeout := fs.Duration("timeout", 0, "wall-clock limit; on expiry the partial result is still written")
	progress := fs.Bool("progress", false, "report exploration progress on stderr")
	verbose := fs.Bool("v", false, "report solver statistics (queries, cache hits, clause exchange) on stderr")
	benchJSON := fs.String("bench-json", "", "merge this run's cold paths/sec and solver stats into a bench JSON file, keyed by the scenario or test name")
	traceOut := fs.String("trace", "", "write a Chrome-trace-event JSON of this run's spans to this file (load in Perfetto; results are byte-identical either way)")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}

	a, err := soft.AgentByName(*agentName)
	if err != nil {
		return usageError{err}
	}
	var explicitTest bool
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "test" {
			explicitTest = true
		}
	})
	var t soft.Test
	if *scenarioName != "" {
		if explicitTest {
			return usagef("-test and -scenario are mutually exclusive")
		}
		sc, ok := soft.ScenarioByName(*scenarioName)
		if !ok {
			return usagef("unknown scenario %q (run 'soft scenarios')", *scenarioName)
		}
		t = sc.Test()
	} else {
		var ok bool
		t, ok = soft.TestByName(*testName)
		if !ok {
			return usagef("unknown test %q (run 'soft tests')", *testName)
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := []soft.Option{
		soft.WithMaxPaths(*maxPaths),
		soft.WithModels(*models),
		soft.WithWorkers(*workers),
		soft.WithClauseSharing(*clauseSharing),
		soft.WithIncrementalSolver(*incremental),
		soft.WithStateMerging(*merge),
		soft.WithCanonicalCut(*canonicalCut),
	}
	if *progress {
		// Throttle by time, not path count: short runs still get feedback
		// and huge runs don't flood stderr. The callback may fire from
		// several workers, hence the mutex.
		var mu sync.Mutex
		var last time.Time
		opts = append(opts, soft.WithProgress(func(ev soft.Event) {
			mu.Lock()
			defer mu.Unlock()
			if time.Since(last) < 250*time.Millisecond {
				return
			}
			last = time.Now()
			fmt.Fprintf(e.stderr, "soft explore: %d paths...\n", ev.Done)
		}))
	}
	var flushTrace func() error
	if *traceOut != "" {
		flushTrace = startTrace(*traceOut)
	}
	// Snapshot the process-global solve-latency histogram around the run so
	// the bench file records this run's quantiles, not the process's.
	latBefore := bitblast.MSolveLatency.Snapshot()
	res, err := soft.Explore(ctx, a, t, opts...)
	if flushTrace != nil {
		if ferr := flushTrace(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if err != nil {
		return err
	}
	solveLat := bitblast.MSolveLatency.Snapshot().Sub(latBefore)

	mark := ""
	if res.Cancelled {
		mark = " (timeout: partial)"
	} else if res.Truncated {
		mark = " (max-paths: partial)"
	}
	fmt.Fprintf(e.stderr, "%s / %s: %d paths in %s (coverage %.1f%% instr, %.1f%% branch)%s\n",
		res.Agent, res.Test, len(res.Paths), res.Elapsed.Round(time.Millisecond),
		res.InstrPct, res.BranchPct, mark)
	if *verbose {
		fmt.Fprintf(e.stderr, "soft explore: %s\n", describeStats(res.SolverStats, res.BranchQueries))
	}
	if *benchJSON != "" {
		// Scenario runs key by scenario name, Table 1 runs by test name —
		// one namespace, the way the Makefile bench targets mix them.
		benchName := *scenarioName
		if benchName == "" {
			benchName = t.Name
		}
		if err := mergeScenarioBench(*benchJSON, benchName, *workers, *incremental || *merge, *merge, res, solveLat); err != nil {
			return err
		}
	}

	if *out == "" {
		return soft.WriteResults(e.stdout, res)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := soft.WriteResults(f, res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func agentsCmd() *command {
	return &command{
		name:     "agents",
		synopsis: "list registered agents",
		run: func(e *env, args []string) error {
			fs := newFlags(e, "agents")
			if err := parse(fs, args); err != nil {
				return err
			}
			if fs.NArg() != 0 {
				return usagef("unexpected arguments %q", fs.Args())
			}
			for _, name := range soft.Agents() {
				a, err := soft.AgentByName(name)
				if err != nil {
					return err
				}
				fmt.Fprintf(e.stdout, "%-10s %s\n", name, a.Name())
			}
			return nil
		},
	}
}

func scenariosCmd() *command {
	return &command{
		name:     "scenarios",
		synopsis: "list the registered stateful multi-message scenarios",
		run: func(e *env, args []string) error {
			fs := newFlags(e, "scenarios")
			if err := parse(fs, args); err != nil {
				return err
			}
			if fs.NArg() != 0 {
				return usagef("unexpected arguments %q", fs.Args())
			}
			for _, sc := range soft.Scenarios() {
				fmt.Fprintf(e.stdout, "%-22s %s\n", sc.Name, sc.Desc)
			}
			fmt.Fprintf(e.stdout, "%-22s %s\n",
				fmt.Sprintf("gen:0 .. gen:%d", soft.GeneratedScenarioCount()-1),
				"Deterministic bounded step-sequence templates (resolved by index, no registration needed).")
			return nil
		},
	}
}

func testsCmd() *command {
	return &command{
		name:     "tests",
		synopsis: "list the evaluation test suite (Table 1)",
		run: func(e *env, args []string) error {
			fs := newFlags(e, "tests")
			if err := parse(fs, args); err != nil {
				return err
			}
			if fs.NArg() != 0 {
				return usagef("unexpected arguments %q", fs.Args())
			}
			for _, t := range soft.Tests() {
				fmt.Fprintf(e.stdout, "%-14s %s\n", t.Name, t.Desc)
			}
			return nil
		},
	}
}
