package main

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDistE2E is the multi-process acceptance test: it builds the real soft
// binary, runs a coordinator and two worker processes over localhost TCP,
// SIGKILLs the first worker after it takes a lease, and asserts the
// distributed output is byte-identical to a single-process
// `soft explore -workers 4` run (wall-clock line normalized).
func TestDistE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH; cannot build the soft binary")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "soft")
	build := exec.Command(goTool, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const agent, test = "ref", "Packet Out"

	// Reference: single-process parallel exploration through the same
	// binary.
	refFile := filepath.Join(dir, "ref.results")
	explore := exec.Command(bin, "explore", "-agent", agent, "-test", test, "-workers", "4", "-o", refFile)
	if out, err := explore.CombinedOutput(); err != nil {
		t.Fatalf("soft explore: %v\n%s", err, out)
	}

	// Coordinator on an ephemeral port; -progress exposes the address and
	// every lease grant on stderr.
	distFile := filepath.Join(dir, "dist.results")
	serve := exec.Command(bin, "serve",
		"-addr", "127.0.0.1:0", "-agent", agent, "-test", test,
		"-shard-depth", "4", "-lease-timeout", "5s", "-progress", "-v",
		"-timeout", "2m", "-o", distFile)
	serveErr, err := serve.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.Start(); err != nil {
		t.Fatalf("start soft serve: %v", err)
	}
	defer serve.Process.Kill()

	addrCh := make(chan string, 1)
	leaseCh := make(chan string, 64)
	serveLog := &lockedBuf{}
	go func() {
		sc := bufio.NewScanner(serveErr)
		for sc.Scan() {
			line := sc.Text()
			serveLog.add(line)
			if a, ok := strings.CutPrefix(line, "soft serve: listening on "); ok {
				addrCh <- a
			}
			if strings.Contains(line, "dist: lease ") && strings.Contains(line, " -> ") {
				select {
				case leaseCh <- line:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator never announced its address\n%s", serveLog)
	}

	// Worker A: started alone so it necessarily receives the first lease;
	// killed (SIGKILL, no goodbye) as soon as a lease is granted. The
	// coordinator must re-lease whatever A held.
	workerA := exec.Command(bin, "work", "-addr", addr, "-name", "workerA", "-workers", "2")
	workerA.Stderr = io.Discard
	if err := workerA.Start(); err != nil {
		t.Fatalf("start worker A: %v", err)
	}
	select {
	case line := <-leaseCh:
		t.Logf("killing worker A after %q", line)
	case <-time.After(60 * time.Second):
		workerA.Process.Kill()
		t.Fatalf("no lease was ever granted to worker A\n%s", serveLog)
	}
	workerA.Process.Kill()
	workerA.Wait()

	// Worker B finishes the run, including anything re-leased from A.
	workerB := exec.Command(bin, "work", "-addr", addr, "-name", "workerB", "-workers", "2")
	workerB.Stderr = io.Discard
	if err := workerB.Start(); err != nil {
		t.Fatalf("start worker B: %v", err)
	}
	defer func() {
		workerB.Process.Kill()
		workerB.Wait()
	}()

	if err := serve.Wait(); err != nil {
		t.Fatalf("soft serve failed: %v\n%s", err, serveLog)
	}

	want, err := os.ReadFile(refFile)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(distFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normalizeElapsed(t, got), normalizeElapsed(t, want)) {
		t.Fatalf("distributed output differs from single-process explore\n--- serve log ---\n%s", serveLog)
	}

	// -v must surface solver statistics aggregated across the workers.
	log := serveLog.String()
	if !strings.Contains(log, "solver:") || !strings.Contains(log, "branch feasibility queries") {
		t.Errorf("serve -v did not report aggregated solver statistics:\n%s", log)
	}
	if !strings.Contains(log, "re-queued") {
		t.Logf("note: worker A finished its lease before the kill landed (re-lease path covered by internal/dist tests)")
	}
}

// lockedBuf collects subprocess log lines for failure messages.
type lockedBuf struct {
	mu    sync.Mutex
	lines []string
}

func (b *lockedBuf) add(s string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lines = append(b.lines, s)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Join(b.lines, "\n")
}
