package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDistE2E is the multi-process acceptance test: it builds the real soft
// binary, runs a traced coordinator and two worker processes over localhost
// TCP, SIGKILLs the first worker after it completes a shard, and asserts
// (1) the distributed output is byte-identical to a single-process
// `soft explore -workers 4` run (wall-clock line normalized) — tracing and
// structured logging included, observation never touches the answer path —
// and (2) the merged Chrome trace is one timeline spanning all three
// processes, with the killed worker's shipped-so-far segments present and
// every worker shard span nested under a coordinator lease span.
func TestDistE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH; cannot build the soft binary")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "soft")
	build := exec.Command(goTool, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const agent, test = "ref", "Packet Out"

	// Reference: single-process parallel exploration through the same
	// binary.
	refFile := filepath.Join(dir, "ref.results")
	explore := exec.Command(bin, "explore", "-agent", agent, "-test", test, "-workers", "4", "-o", refFile)
	if out, err := explore.CombinedOutput(); err != nil {
		t.Fatalf("soft explore: %v\n%s", err, out)
	}

	// Coordinator on an ephemeral port; -progress exposes the address and
	// structured lease/shard lifecycle lines on stderr; -trace collects the
	// merged cross-process timeline.
	distFile := filepath.Join(dir, "dist.results")
	traceFilePath := filepath.Join(dir, "trace.json")
	serve := exec.Command(bin, "serve",
		"-addr", "127.0.0.1:0", "-agent", agent, "-test", test,
		"-shard-depth", "4", "-lease-timeout", "5s", "-progress", "-v",
		"-trace", traceFilePath,
		"-timeout", "2m", "-o", distFile)
	serveErr, err := serve.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.Start(); err != nil {
		t.Fatalf("start soft serve: %v", err)
	}
	defer serve.Process.Kill()

	addrCh := make(chan string, 1)
	shardDoneCh := make(chan string, 64)
	serveLog := &lockedBuf{}
	go func() {
		sc := bufio.NewScanner(serveErr)
		for sc.Scan() {
			line := sc.Text()
			serveLog.add(line)
			if a, ok := strings.CutPrefix(line, "soft serve: listening on "); ok {
				addrCh <- a
			}
			// Structured fleet lines render through the text slog handler.
			if strings.Contains(line, `msg="shard done"`) {
				select {
				case shardDoneCh <- line:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator never announced its address\n%s", serveLog)
	}

	// Worker A: started alone so it necessarily receives the first leases;
	// killed (SIGKILL, no goodbye) as soon as it has banked one shard — at
	// that point it has also shipped that shard's trace segment, which must
	// survive into the merged timeline. The coordinator must re-lease
	// whatever A still held.
	workerA := exec.Command(bin, "work", "-addr", addr, "-name", "workerA", "-workers", "2")
	workerA.Stderr = io.Discard
	if err := workerA.Start(); err != nil {
		t.Fatalf("start worker A: %v", err)
	}
	select {
	case line := <-shardDoneCh:
		t.Logf("killing worker A after %q", line)
	case <-time.After(60 * time.Second):
		workerA.Process.Kill()
		t.Fatalf("worker A never completed a shard\n%s", serveLog)
	}
	workerA.Process.Kill()
	workerA.Wait()

	// Worker B finishes the run, including anything re-leased from A.
	workerB := exec.Command(bin, "work", "-addr", addr, "-name", "workerB", "-workers", "2")
	workerB.Stderr = io.Discard
	if err := workerB.Start(); err != nil {
		t.Fatalf("start worker B: %v", err)
	}
	defer func() {
		workerB.Process.Kill()
		workerB.Wait()
	}()

	if err := serve.Wait(); err != nil {
		t.Fatalf("soft serve failed: %v\n%s", err, serveLog)
	}

	want, err := os.ReadFile(refFile)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(distFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normalizeElapsed(t, got), normalizeElapsed(t, want)) {
		t.Fatalf("distributed output differs from single-process explore\n--- serve log ---\n%s", serveLog)
	}

	// -v must surface solver statistics aggregated across the workers.
	log := serveLog.String()
	if !strings.Contains(log, "solver:") || !strings.Contains(log, "branch feasibility queries") {
		t.Errorf("serve -v did not report aggregated solver statistics:\n%s", log)
	}
	if !strings.Contains(log, "re-queued") {
		t.Logf("note: worker A finished its leases before the kill landed (re-lease path covered by internal/dist tests)")
	}
	// Structured fleet lines carry the ids that make them greppable.
	for _, want := range []string{`msg="lease granted"`, "worker=workerA", "worker=workerB", "job=", "lease="} {
		if !strings.Contains(log, want) {
			t.Errorf("serve log misses %q:\n%s", want, log)
		}
	}

	assertMergedDistTrace(t, traceFilePath)
}

// assertMergedDistTrace checks the coordinator's -trace output is one
// coherent multi-process timeline: spans from the coordinator and both
// workers (the SIGKILLed one included — its shipped segments survive),
// worker tracks named via process_name metadata, and every worker shard
// span nested under a recorded coordinator lease span.
func assertMergedDistTrace(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int64  `json:"pid"`
			Args struct {
				Name   string `json:"name"`
				Span   uint64 `json:"span"`
				Parent uint64 `json:"parent"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}

	procNames := map[string]bool{}     // "M" metadata: pid track names
	spanPids := map[int64]bool{}       // pids owning at least one "X" span
	leaseSpans := map[uint64]bool{}    // coordinator lease span ids
	shardParents := map[uint64]int{}   // worker shard spans by parent id
	var coordSpans, shardSpans int
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			procNames[ev.Args.Name] = true
		case "X":
			spanPids[ev.Pid] = true
			if ev.Pid == 1 {
				coordSpans++
				if strings.HasPrefix(ev.Name, "lease:") {
					leaseSpans[ev.Args.Span] = true
				}
			}
			if strings.HasPrefix(ev.Name, "shard:") && ev.Pid != 1 {
				shardSpans++
				shardParents[ev.Args.Parent]++
			}
		default:
			t.Errorf("unexpected phase %q on %q", ev.Ph, ev.Name)
		}
	}
	if len(spanPids) < 3 {
		t.Fatalf("merged trace spans %d processes, want >= 3 (coordinator + both workers):\n%s", len(spanPids), data)
	}
	if !procNames["workerA"] || !procNames["workerB"] {
		t.Errorf("worker tracks not named: got %v, want workerA and workerB", procNames)
	}
	if coordSpans == 0 || len(leaseSpans) == 0 {
		t.Errorf("no coordinator lease spans recorded (coord spans: %d)", coordSpans)
	}
	if shardSpans == 0 {
		t.Error("no worker shard spans in merged trace")
	}
	for parent, n := range shardParents {
		if parent == 0 {
			t.Errorf("%d worker shard spans have no parent", n)
		} else if !leaseSpans[parent] {
			t.Errorf("%d worker shard spans nest under unknown span %d", n, parent)
		}
	}
}

// lockedBuf collects subprocess log lines for failure messages.
type lockedBuf struct {
	mu    sync.Mutex
	lines []string
}

func (b *lockedBuf) add(s string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lines = append(b.lines, s)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Join(b.lines, "\n")
}
