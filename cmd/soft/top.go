package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/soft-testing/soft/internal/obs"
)

func topCmd() *command {
	return &command{
		name:     "top",
		synopsis: "live fleet dashboard: poll a service's /metrics and render workers, queue, and latency quantiles",
		run:      runTop,
	}
}

func runTop(e *env, args []string) error {
	fs := newFlags(e, "top")
	service := serviceFlag(fs)
	interval := fs.Duration("interval", 2*time.Second, "poll period between /metrics scrapes")
	once := fs.Bool("once", false, "print one snapshot and exit instead of redrawing")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}
	if *interval <= 0 {
		return usagef("-interval must be positive")
	}

	url := strings.TrimRight(*service, "/") + "/metrics"
	if *once {
		cur, err := scrapeMetrics(url)
		if err != nil {
			return err
		}
		return renderTop(e, url, cur, nil, 0)
	}

	// The loop survives scrape failures (a restarting daemon shouldn't kill
	// the dashboard) and exits cleanly on interrupt.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var prev *promScrape
	var prevAt time.Time
	for {
		cur, err := scrapeMetrics(url)
		fmt.Fprint(e.stdout, "\x1b[H\x1b[2J") // cursor home + clear screen
		if err != nil {
			fmt.Fprintf(e.stdout, "soft top: %s: %v (retrying every %s)\n", url, err, interval)
		} else {
			var dt time.Duration
			if prev != nil {
				dt = time.Since(prevAt)
			}
			if rerr := renderTop(e, url, cur, prev, dt); rerr != nil {
				return rerr
			}
			prev, prevAt = cur, time.Now()
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
}

// promScrape is one parse of a Prometheus text exposition: plain series
// (counters and gauges) by name, and histograms reconstructed back into
// obs snapshots so the same Quantile math serves scrape-side rendering.
type promScrape struct {
	values map[string]int64
	hists  map[string]obs.HistogramSnapshot
}

func scrapeMetrics(url string) (*promScrape, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return parseProm(resp.Body)
}

// parseProm reads the exposition format WritePrometheus emits. Bucket
// series are cumulative with power-of-two `le` bounds (2^i - 1), so the
// per-bucket counts fall out of successive differences and the bound maps
// back to its bucket index via bits.Len64.
func parseProm(r io.Reader) (*promScrape, error) {
	s := &promScrape{
		values: map[string]int64{},
		hists:  map[string]obs.HistogramSnapshot{},
	}
	prevCum := map[string]int64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series, value, found := strings.Cut(line, " ")
		if !found {
			continue
		}
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			continue // histogram _sum could overflow or be float-rendered elsewhere; skip, don't fail
		}
		if name, le, ok := bucketSeries(series); ok {
			h := s.hists[name]
			h.Counts[bucketIndex(le)] += v - prevCum[name]
			prevCum[name] = v
			s.hists[name] = h
			continue
		}
		if name, ok := strings.CutSuffix(series, "_sum"); ok {
			if h, isHist := s.hists[name]; isHist {
				h.Sum = v
				s.hists[name] = h
				continue
			}
		}
		if name, ok := strings.CutSuffix(series, "_count"); ok {
			if _, isHist := s.hists[name]; isHist {
				continue // redundant with the bucket sum
			}
		}
		s.values[series] = v
	}
	return s, sc.Err()
}

// bucketSeries splits `name_bucket{le="N"}` into (name, N). The +Inf
// bucket is reported as not-a-bucket: its count duplicates _count and
// every observation already landed in a finite power-of-two bucket.
func bucketSeries(series string) (name string, le int64, ok bool) {
	prefix, rest, found := strings.Cut(series, "_bucket{le=\"")
	if !found {
		return "", 0, false
	}
	bound, found := strings.CutSuffix(rest, "\"}")
	if !found || bound == "+Inf" {
		return "", 0, false
	}
	le, err := strconv.ParseInt(bound, 10, 64)
	if err != nil {
		return "", 0, false
	}
	return prefix, le, true
}

// bucketIndex inverts obs.BucketBound: bound 2^i - 1 → bucket i.
func bucketIndex(bound int64) int {
	if bound <= 0 {
		return 0
	}
	return bits.Len64(uint64(bound))
}

// renderTop writes one dashboard frame. prev (the previous scrape, nil on
// the first frame) turns cumulative counters into rates and lifetime
// histograms into since-last-poll quantiles; with no interval activity the
// lifetime quantiles stand in, marked as such.
func renderTop(e *env, url string, cur, prev *promScrape, dt time.Duration) error {
	fmt.Fprintf(e.stdout, "soft top — %s — %s\n\n", url, time.Now().Format("15:04:05"))
	tw := tabwriter.NewWriter(e.stdout, 2, 8, 2, ' ', 0)

	gauge := func(label, name string) {
		if v, ok := cur.values[name]; ok {
			fmt.Fprintf(tw, "%s\t%d\n", label, v)
		}
	}
	gauge("workers connected", "soft_fleet_workers_connected")
	gauge("jobs queued", "soft_campaignd_jobs_queued")
	gauge("jobs running", "soft_campaignd_jobs_running")

	if paths, ok := cur.values["soft_fleet_paths_completed_total"]; ok {
		rate := ""
		if prev != nil && dt > 0 {
			if pp, had := prev.values["soft_fleet_paths_completed_total"]; had && paths >= pp {
				rate = fmt.Sprintf("\t%.1f/s", float64(paths-pp)/dt.Seconds())
			}
		}
		fmt.Fprintf(tw, "paths completed\t%d%s\n", paths, rate)
	}

	hist := func(label, name string) {
		h, ok := cur.hists[name]
		if !ok {
			return
		}
		window := "lifetime"
		if prev != nil {
			if d := h.Sub(prev.hists[name]); d.Count() > 0 {
				h, window = d, "last poll"
			}
		}
		if h.Count() == 0 {
			fmt.Fprintf(tw, "%s\t—\n", label)
			return
		}
		fmt.Fprintf(tw, "%s\tp50 %s\tp99 %s\t(n=%d, %s)\n", label,
			fmtQuantileNs(h.Quantile(0.5)), fmtQuantileNs(h.Quantile(0.99)), h.Count(), window)
	}
	hist("lease RTT", "soft_fleet_lease_rtt_ns")
	hist("solve latency", "soft_sat_solve_latency_ns")

	return tw.Flush()
}

// fmtQuantileNs renders a nanosecond quantile bound at dashboard
// precision — the buckets are only 2×-accurate, so two digits is honest.
func fmtQuantileNs(v int64) string {
	d := time.Duration(v)
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(10 * time.Nanosecond).String()
	}
	return d.String()
}
