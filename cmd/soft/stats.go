package main

import (
	"fmt"
	"time"

	"github.com/soft-testing/soft"
)

// describeStats renders one stage's solver statistics for -v output: how
// hard the solver worked, how much the query cache saved, and how many
// learned clauses crossed the inter-worker exchange. branchQueries < 0
// omits the exploration-only frontier counter (crosscheck has none).
func describeStats(st soft.SolverStats, branchQueries int64) string {
	s := fmt.Sprintf("solver: %d queries, %d cache hits", st.Queries, st.CacheHits)
	if branchQueries >= 0 {
		s += fmt.Sprintf(", %d branch feasibility queries", branchQueries)
	}
	if st.SolveTime > 0 {
		s += fmt.Sprintf(", %s solving", st.SolveTime.Round(time.Millisecond))
	}
	if st.AssumptionSolves > 0 || st.FullSolves > 0 {
		s += fmt.Sprintf("; sessions: %d assumption solves, %d full solves, %d constraints reused",
			st.AssumptionSolves, st.FullSolves, st.ConstraintsReused)
	}
	if st.MergeHits > 0 {
		s += fmt.Sprintf(", %d merge hits", st.MergeHits)
	}
	if st.InternHits > 0 {
		s += fmt.Sprintf("; intern: %d hits", st.InternHits)
	}
	s += fmt.Sprintf("; clause exchange: %d exported, %d imported",
		st.ClauseExports, st.ClauseImports)
	return s
}
