// Command soft is the unified CLI for the SOFT pipeline. It replaces the
// former soft-explore, soft-group, soft-diff and soft-report binaries with
// one tool whose subcommands share agent lookup, flag handling, and exit
// conventions:
//
//	soft explore     run phase 1 for one agent and one test
//	soft matrix      run a whole (agents × tests) campaign on one fleet
//	soft campaignd   run the durable always-on campaign service
//	soft submit      submit a campaign job to a campaign service
//	soft jobs        list a campaign service's jobs
//	soft fetch       fetch a finished job's canonical report
//	soft stats       fetch a running service's live metrics
//	soft top         live dashboard over a service's /metrics
//	soft serve       coordinate a distributed phase-1 run across workers
//	soft work        explore shard leases for a coordinator fleet
//	soft group       group a results file by output behavior
//	soft diff        crosscheck two results files (phase 2)
//	soft report      reproduce the paper's evaluation tables and figures
//	soft quickstart  the paper's Figure 1 worked example
//	soft agents      list registered agents
//	soft tests       list the evaluation test suite
//
// Exit codes: 0 on success, 1 on runtime errors, 2 on usage errors.
// Errors are reported as "soft <subcommand>: <error>" on stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// env carries the process streams so tests can drive the CLI in-process.
type env struct {
	stdout, stderr io.Writer
}

type command struct {
	name     string
	synopsis string
	run      func(e *env, args []string) error
}

// commands is the dispatch table in help order.
func commands() []*command {
	return []*command{
		exploreCmd(),
		matrixCmd(),
		campaigndCmd(),
		submitCmd(),
		jobsCmd(),
		fetchCmd(),
		statsCmd(),
		topCmd(),
		serveCmd(),
		workCmd(),
		groupCmd(),
		diffCmd(),
		reportCmd(),
		quickstartCmd(),
		agentsCmd(),
		testsCmd(),
		scenariosCmd(),
	}
}

// usageError marks an error that should exit with status 2.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// errParsePrinted signals that the flag package already reported the
// problem; run exits 2 without a second message.
var errParsePrinted = errors.New("flag parse error already printed")

// newFlags builds a subcommand flag set wired to the environment's stderr.
func newFlags(e *env, name string) *flag.FlagSet {
	fs := flag.NewFlagSet("soft "+name, flag.ContinueOnError)
	fs.SetOutput(e.stderr)
	return fs
}

// parse runs fs over args, normalizing help and parse failures.
func parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp
		}
		return errParsePrinted
	}
	return nil
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: soft <command> [flags] [args]")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "commands:")
	for _, c := range commands() {
		fmt.Fprintf(w, "  %-12s %s\n", c.name, c.synopsis)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "run 'soft <command> -h' for a command's flags")
}

// run dispatches one CLI invocation and returns the process exit code. It
// is the single place exit codes are decided, so no subcommand ever calls
// os.Exit — deferred cleanup (file closes, context cancels) always runs.
func run(args []string, stdout, stderr io.Writer) int {
	e := &env{stdout: stdout, stderr: stderr}
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "help", "-h", "--help":
		usage(stdout)
		return 0
	}
	var cmd *command
	for _, c := range commands() {
		if c.name == args[0] {
			cmd = c
			break
		}
	}
	if cmd == nil {
		fmt.Fprintf(stderr, "soft: unknown command %q\n\n", args[0])
		usage(stderr)
		return 2
	}
	err := cmd.run(e, args[1:])
	var uerr usageError
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	case errors.Is(err, errParsePrinted):
		return 2
	case errors.As(err, &uerr):
		fmt.Fprintf(stderr, "soft %s: %s\n", cmd.name, errMessage(err))
		return 2
	default:
		fmt.Fprintf(stderr, "soft %s: %s\n", cmd.name, errMessage(err))
		return 1
	}
}

// errMessage drops the soft library's package prefix: the CLI already
// prefixes every error with "soft <subcommand>:".
func errMessage(err error) string {
	return strings.TrimPrefix(err.Error(), "soft: ")
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
