// End-to-end tests driving the unified CLI in-process through run() — the
// same dispatch, flag handling, and exit-code path the binary uses, minus
// the os.Exit.
package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

// TestExploreDiffE2E mirrors the quickstart_e2e_test pipeline through the
// binary surface: soft explore on the ref/modified agent pair, then soft
// diff, asserting the known injected inconsistencies are reported.
func TestExploreDiffE2E(t *testing.T) {
	dir := t.TempDir()
	refOut := filepath.Join(dir, "ref.txt")
	modOut := filepath.Join(dir, "mod.txt")

	for agent, path := range map[string]string{"ref": refOut, "modified": modOut} {
		_, stderr, code := runCLI(t, "explore", "-agent", agent, "-test", "Packet Out", "-o", path)
		if code != 0 {
			t.Fatalf("soft explore -agent %s: exit %d, stderr:\n%s", agent, code, stderr)
		}
		if !strings.Contains(stderr, "Packet Out") || !strings.Contains(stderr, "paths") {
			t.Errorf("explore summary missing from stderr: %q", stderr)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(data, []byte("soft-results v1\n")) {
			t.Fatalf("results file for %s does not start with the versioned magic line", agent)
		}
	}

	stdout, stderr, code := runCLI(t, "diff", refOut, modOut)
	if code != 0 {
		t.Fatalf("soft diff: exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "Reference Switch vs Modified Switch on Packet Out") {
		t.Errorf("diff header missing:\n%s", stdout)
	}
	// The §5.1.1 injected modifications visible on Packet Out: the FLOOD
	// rejection and the changed error code for output port 0.
	for _, want := range []string{"inconsistenc", "witness", "port=FLOOD", "ERROR/BAD_ACTION/5"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("diff output misses %q:\n%s", want, stdout)
		}
	}

	// The diff report must be byte-identical across worker counts and cache
	// modes (the summary line carries wall-clock time, so compare from the
	// first inconsistency on).
	body := func(out string) string {
		if i := strings.Index(out, "\n"); i >= 0 {
			return out[i:]
		}
		return out
	}
	wantBody := body(stdout)
	if wantBody == "" || !strings.Contains(wantBody, "witness") {
		t.Fatalf("diff body empty or witness-free:\n%s", stdout)
	}
	for _, args := range [][]string{
		{"diff", "-workers", "1", refOut, modOut},
		{"diff", "-workers", "4", refOut, modOut},
		{"diff", "-workers", "4", "-shared-cache=false", "-v", refOut, modOut},
	} {
		out2, stderr2, code2 := runCLI(t, args...)
		if code2 != 0 {
			t.Fatalf("soft %v: exit %d, stderr:\n%s", args, code2, stderr2)
		}
		if got := body(out2); got != wantBody {
			t.Errorf("soft %v diverged from the canonical report:\n--- want\n%s\n--- got\n%s",
				args, wantBody, got)
		}
		if args[len(args)-3] == "-v" && !strings.Contains(stderr2, "solver:") {
			t.Errorf("soft diff -v reported no solver statistics: %q", stderr2)
		}
	}

	// soft group renders the same results file's distinct behaviors.
	stdout, stderr, code = runCLI(t, "group", refOut)
	if code != 0 {
		t.Fatalf("soft group: exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "distinct output results") {
		t.Errorf("group summary missing:\n%s", stdout)
	}
}

// normalizeElapsed blanks the results file's only wall-clock-dependent
// line so runs can be compared byte for byte.
func normalizeElapsed(t *testing.T, data []byte) []byte {
	t.Helper()
	lines := bytes.Split(data, []byte("\n"))
	found := false
	for i, l := range lines {
		if bytes.HasPrefix(l, []byte("elapsed ")) {
			lines[i] = []byte("elapsed 0")
			found = true
		}
	}
	if !found {
		t.Fatal("results file has no elapsed line")
	}
	return bytes.Join(lines, []byte("\n"))
}

// TestExploreDeterminismFlags is the CLI acceptance check for the shared
// solver stack: `soft explore` output must be byte-identical (modulo the
// elapsed line) across every combination of -workers and -clause-sharing.
func TestExploreDeterminismFlags(t *testing.T) {
	dir := t.TempDir()
	var want []byte
	for _, workers := range []string{"1", "4"} {
		for _, sharing := range []string{"false", "true"} {
			out := filepath.Join(dir, "w"+workers+"s"+sharing+".txt")
			_, stderr, code := runCLI(t, "explore", "-agent", "ref", "-test", "Packet Out",
				"-workers", workers, "-clause-sharing="+sharing, "-v", "-o", out)
			if code != 0 {
				t.Fatalf("soft explore -workers %s -clause-sharing=%s: exit %d, stderr:\n%s",
					workers, sharing, code, stderr)
			}
			if !strings.Contains(stderr, "solver:") || !strings.Contains(stderr, "clause exchange:") {
				t.Errorf("-v did not report solver statistics: %q", stderr)
			}
			data, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			data = normalizeElapsed(t, data)
			if want == nil {
				want = data
				continue
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("-workers %s -clause-sharing=%s produced different result bytes", workers, sharing)
			}
		}
	}
}

// TestQuickstartSubcommand checks the Figure 1 walkthrough lands on the
// golden witness.
func TestQuickstartSubcommand(t *testing.T) {
	stdout, stderr, code := runCLI(t, "quickstart")
	if code != 0 {
		t.Fatalf("soft quickstart: exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "0xfffd") {
		t.Errorf("quickstart did not find the controller-port witness:\n%s", stdout)
	}
}

// TestCLIListings covers soft agents / soft tests.
func TestCLIListings(t *testing.T) {
	stdout, _, code := runCLI(t, "agents")
	if code != 0 {
		t.Fatalf("soft agents: exit %d", code)
	}
	for _, want := range []string{"ref", "modified", "ovs", "Reference Switch"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("soft agents output misses %q:\n%s", want, stdout)
		}
	}
	stdout, _, code = runCLI(t, "tests")
	if code != 0 {
		t.Fatalf("soft tests: exit %d", code)
	}
	if !strings.Contains(stdout, "Packet Out") {
		t.Errorf("soft tests output misses Packet Out:\n%s", stdout)
	}
}

// TestCLIExitCodes pins the shared error-path conventions: usage errors
// exit 2 with a "soft <subcommand>:" prefix, runtime errors exit 1.
func TestCLIExitCodes(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		code     int
		inStderr []string
	}{
		{"no command", nil, 2, []string{"usage: soft"}},
		{"unknown command", []string{"frobnicate"}, 2, []string{"unknown command"}},
		{"unknown agent", []string{"explore", "-agent", "nosuch"}, 2,
			[]string{"soft explore:", "unknown agent", "ref", "modified", "ovs"}},
		{"unknown test", []string{"explore", "-test", "nosuch"}, 2,
			[]string{"soft explore:", "unknown test"}},
		{"diff arity", []string{"diff", "only-one.txt"}, 2,
			[]string{"soft diff:", "two results files"}},
		{"missing file", []string{"group", "/nonexistent/x.txt"}, 1,
			[]string{"soft group:"}},
		{"bad flag", []string{"explore", "-nosuchflag"}, 2, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, stderr, code := runCLI(t, c.args...)
			if code != c.code {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, c.code, stderr)
			}
			for _, want := range c.inStderr {
				if !strings.Contains(stderr, want) {
					t.Errorf("stderr misses %q:\n%s", want, stderr)
				}
			}
		})
	}
}

// TestCLIBadResultsFile drives the versioned-magic error through the
// binary surface.
func TestCLIBadResultsFile(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("this is not a results file\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runCLI(t, "group", bad)
	if code != 1 {
		t.Fatalf("soft group on bad file: exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "soft-results v1") {
		t.Errorf("error does not name the expected format version:\n%s", stderr)
	}
}

// TestHelpExitsZero: help is not an error.
func TestHelpExitsZero(t *testing.T) {
	stdout, _, code := runCLI(t, "help")
	if code != 0 {
		t.Fatalf("soft help: exit %d", code)
	}
	for _, c := range commands() {
		if !strings.Contains(stdout, c.name) {
			t.Errorf("help misses command %q", c.name)
		}
	}
	if _, _, code := runCLI(t, "explore", "-h"); code != 0 {
		t.Fatalf("soft explore -h: exit %d, want 0", code)
	}
}
