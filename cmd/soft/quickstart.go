package main

import (
	"context"
	"fmt"

	"github.com/soft-testing/soft"
)

func quickstartCmd() *command {
	return &command{
		name:     "quickstart",
		synopsis: "walk the paper's Figure 1 worked example end to end",
		run:      runQuickstart,
	}
}

// The two toy Packet Out handlers of Figure 1: agent 1 supports the
// controller port (0xfffd), agent 2 does not.
//
// Keep in sync with examples/quickstart/main.go: the example is the
// self-contained, public-API-only rendition of the same golden flow
// (kept separate so it stays copy-pasteable documentation), and both
// copies are pinned to the 0xfffd witness — this one by
// TestQuickstartSubcommand, the example by the verify recipe.
func figure1Agent1(ctx *soft.ExecContext) {
	p := ctx.NewSym("port", 16)
	switch {
	case ctx.Branch(soft.EqConst(p, 0xfffd)): // OFPP_CONTROLLER
		ctx.Emit("CTRL")
	case ctx.Branch(soft.Ult(p, soft.Const(16, 25))):
		ctx.Emit("FWD")
	default:
		ctx.Emit("ERR")
	}
}

func figure1Agent2(ctx *soft.ExecContext) {
	p := ctx.NewSym("port", 16)
	if ctx.Branch(soft.Ult(p, soft.Const(16, 25))) {
		ctx.Emit("FWD")
	} else {
		ctx.Emit("ERR")
	}
}

// figure1Serialize converts a toy handler run into the phase-1 result
// shape the grouping and crosscheck stages consume: one path per entry,
// the emitted string doubling as the normalized trace.
func figure1Serialize(agent string, res *soft.HandlerResult) *soft.SerializedResult {
	out := &soft.SerializedResult{Agent: agent, Test: "Figure 1"}
	for _, p := range res.Paths {
		behavior := p.Outputs[0].(string)
		out.Paths = append(out.Paths, soft.SerializedPath{
			ID:        p.ID,
			Cond:      p.Condition(),
			Template:  behavior,
			Canonical: behavior,
			Model:     p.Model,
		})
	}
	return out
}

func runQuickstart(e *env, args []string) error {
	fs := newFlags(e, "quickstart")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}

	fmt.Fprintln(e.stdout, "SOFT quickstart: the paper's Figure 1 / Figure 2 example.")
	fmt.Fprintln(e.stdout)

	ctx := context.Background()
	results := make([]*soft.SerializedResult, 2)
	for i, h := range []soft.Handler{figure1Agent1, figure1Agent2} {
		name := fmt.Sprintf("Agent %d", i+1)
		res, err := soft.ExploreHandler(ctx, h, soft.WithModels(true))
		if err != nil {
			return err
		}
		fmt.Fprintf(e.stdout, "%s: %d paths\n", name, len(res.Paths))
		for _, p := range res.Paths {
			fmt.Fprintf(e.stdout, "  path: output=%-4s condition=%v\n", p.Outputs[0], p.Condition())
		}
		results[i] = figure1Serialize(name, res)
	}

	fmt.Fprintln(e.stdout, "\nCrosschecking result groups (different outputs, intersecting subspaces):")
	rep, err := soft.CrossCheck(ctx,
		soft.GroupSerialized(results[0]), soft.GroupSerialized(results[1]))
	if err != nil {
		return err
	}
	if len(rep.Inconsistencies) == 0 {
		fmt.Fprintln(e.stdout, "  none found")
		return nil
	}
	for _, inc := range rep.Inconsistencies {
		fmt.Fprintf(e.stdout, "  inconsistency: Agent1=%s Agent2=%s at port=%#x\n",
			inc.ACanonical, inc.BCanonical, inc.Witness["port"])
	}
	fmt.Fprintln(e.stdout, "\nAs in the paper: the only inconsistency is the controller port (0xfffd).")
	return nil
}
