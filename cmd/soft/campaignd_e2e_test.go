package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startCampaignd launches the daemon and returns its API base URL, the
// command handle, and the log collector; lines matching watch are relayed
// on watchCh (first occurrence only).
func startCampaignd(t *testing.T, bin, storeDir, watch string, watchCh chan string) (string, *exec.Cmd, *lockedBuf) {
	t.Helper()
	cmd := exec.Command(bin, "campaignd", "-addr", "127.0.0.1:0",
		"-store", storeDir, "-code-version", "e2e", "-v")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start soft campaignd: %v", err)
	}
	log := &lockedBuf{}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sent := false
		for sc.Scan() {
			line := sc.Text()
			log.add(line)
			if a, ok := strings.CutPrefix(line, "soft campaignd: listening on "); ok {
				addrCh <- a
			}
			if watch != "" && !sent && strings.Contains(line, watch) {
				sent = true
				watchCh <- line
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, cmd, log
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("campaignd never announced its address\n%s", log)
		return "", nil, nil
	}
}

// campaignJobView mirrors the slice of the job-record JSON the test needs.
type campaignJobView struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Error    string `json:"error"`
	Restarts int    `json:"restarts"`
}

func getJob(t *testing.T, base, id string) campaignJobView {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	var j campaignJobView
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	return j
}

// TestCampaignServeE2E is the durability acceptance test, multi-process
// edition: it submits a campaign to a real `soft campaignd` process,
// SIGKILLs the daemon mid-campaign — no flush, no goodbye — restarts it on
// the same store, and asserts the resumed job's canonical report is
// byte-identical to a plain fleetless `soft matrix` run that was never
// interrupted. It then runs `soft matrix -service` against the daemon to
// cover the remote RunMatrix path, and checks SIGTERM shuts down cleanly.
func TestCampaignServeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH; cannot build the soft binary")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "soft")
	build := exec.Command(goTool, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	agents := "ref,modified"
	tests := "Packet Out,Stats Request"

	// The uninterrupted reference: a fleetless serviceless campaign.
	refReport := filepath.Join(dir, "ref.report")
	ref := exec.Command(bin, "matrix", "-agents", agents, "-tests", tests, "-o", refReport)
	if out, err := ref.CombinedOutput(); err != nil {
		t.Fatalf("reference soft matrix: %v\n%s", err, out)
	}
	wantReport, err := os.ReadFile(refReport)
	if err != nil {
		t.Fatal(err)
	}

	// Daemon, round 1: submit, then SIGKILL as soon as the job starts.
	storeDir := filepath.Join(dir, "store")
	startedCh := make(chan string, 1)
	base, daemon1, log1 := startCampaignd(t, bin, storeDir, `msg="job started"`, startedCh)
	defer daemon1.Process.Kill()

	submit := exec.Command(bin, "submit", "-service", base,
		"-agents", agents, "-tests", tests, "-tenant", "e2e")
	submitOut, err := submit.CombinedOutput()
	if err != nil {
		t.Fatalf("soft submit: %v\n%s", err, submitOut)
	}
	fields := strings.Fields(string(submitOut))
	if len(fields) < 2 || !strings.HasPrefix(fields[1], "j") {
		t.Fatalf("soft submit output %q carries no job id", submitOut)
	}
	jobID := fields[1]

	select {
	case line := <-startedCh:
		t.Logf("SIGKILLing campaignd after %q", line)
	case <-time.After(60 * time.Second):
		t.Fatalf("job never started\n%s", log1)
	}
	if err := daemon1.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	daemon1.Wait()

	// Daemon, round 2: same store, fresh process. The journal replay must
	// requeue the interrupted job and run it to completion.
	base, daemon2, log2 := startCampaignd(t, bin, storeDir, "", nil)
	defer func() {
		daemon2.Process.Kill()
		daemon2.Wait()
	}()

	deadline := time.Now().Add(3 * time.Minute)
	var j campaignJobView
	for {
		j = getJob(t, base, jobID)
		if j.State == "done" || j.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q after restart\n%s", jobID, j.State, log2)
		}
		time.Sleep(200 * time.Millisecond)
	}
	if j.State != "done" {
		t.Fatalf("resumed job %s failed: %s\n%s", jobID, j.Error, log2)
	}
	if j.Restarts < 1 {
		t.Errorf("job %s restarts = %d, want >= 1 (the journal must witness the kill)", jobID, j.Restarts)
	}

	// The resumed report must match the uninterrupted reference exactly.
	gotReport := filepath.Join(dir, "resumed.report")
	fetch := exec.Command(bin, "fetch", "-service", base, "-o", gotReport, jobID)
	if out, err := fetch.CombinedOutput(); err != nil {
		t.Fatalf("soft fetch: %v\n%s", err, out)
	}
	got, err := os.ReadFile(gotReport)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantReport) {
		t.Fatalf("resumed campaign report differs from uninterrupted run\n--- daemon log ---\n%s", log2)
	}

	// `soft jobs` lists the job with its restart count.
	jobs := exec.Command(bin, "jobs", "-service", base, "-tenant", "e2e")
	jobsOut, err := jobs.CombinedOutput()
	if err != nil {
		t.Fatalf("soft jobs: %v\n%s", err, jobsOut)
	}
	if !strings.Contains(string(jobsOut), jobID) || !strings.Contains(string(jobsOut), "done") {
		t.Errorf("soft jobs output misses the finished job:\n%s", jobsOut)
	}

	// Remote-matrix path: the same campaign through `soft matrix -service`
	// — served warm from the daemon's store, byte-identical bytes again.
	// -trace rides along: the client must download the daemon's segment
	// bundle and merge it into one Chrome timeline whose job span lives on
	// a different (remote) track than the client's own campaign span.
	remoteReport := filepath.Join(dir, "remote.report")
	remoteTrace := filepath.Join(dir, "remote-trace.json")
	remote := exec.Command(bin, "matrix", "-agents", agents, "-tests", tests,
		"-service", base, "-trace", remoteTrace, "-o", remoteReport)
	if out, err := remote.CombinedOutput(); err != nil {
		t.Fatalf("soft matrix -service: %v\n%s", err, out)
	}
	remoteBytes, err := os.ReadFile(remoteReport)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remoteBytes, wantReport) {
		t.Fatal("soft matrix -service report differs from the local reference")
	}
	assertServiceTrace(t, remoteTrace)

	// Observability smoke: the daemon serves Prometheus text on GET
	// /metrics — the campaign lifecycle series must be present (they are
	// registered at init, so presence is version-skew-proof even when a
	// counter is still zero) — and `soft stats` renders both views.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	metricsBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d\n%s", resp.StatusCode, metricsBody)
	}
	for _, want := range []string{
		"soft_campaignd_jobs_submitted_total",
		"soft_campaignd_jobs_done_total",
		"soft_campaignd_run_duration_ns_count",
		"soft_sat_solves_total",
		"soft_store_result_hits_total",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("/metrics misses series %s", want)
		}
	}
	stats := exec.Command(bin, "stats", "-service", base, "-job", jobID)
	statsOut, err := stats.CombinedOutput()
	if err != nil {
		t.Fatalf("soft stats -job: %v\n%s", err, statsOut)
	}
	if !strings.Contains(string(statsOut), jobID) || !strings.Contains(string(statsOut), "done") {
		t.Errorf("soft stats -job output misses the job record:\n%s", statsOut)
	}
	statsAll := exec.Command(bin, "stats", "-service", base)
	statsAllOut, err := statsAll.CombinedOutput()
	if err != nil {
		t.Fatalf("soft stats: %v\n%s", err, statsAllOut)
	}
	if !strings.Contains(string(statsAllOut), "soft_campaignd_jobs_done_total") {
		t.Errorf("soft stats output misses the registry:\n%s", statsAllOut)
	}
	// `soft top -once` renders one dashboard snapshot from the same scrape.
	top := exec.Command(bin, "top", "-service", base, "-once")
	topOut, err := top.CombinedOutput()
	if err != nil {
		t.Fatalf("soft top -once: %v\n%s", err, topOut)
	}
	for _, want := range []string{"jobs queued", "jobs running"} {
		if !strings.Contains(string(topOut), want) {
			t.Errorf("soft top -once output misses %q:\n%s", want, topOut)
		}
	}

	// Graceful shutdown: SIGTERM exits 0 after requeueing running jobs.
	if err := daemon2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := daemon2.Wait(); err != nil {
		t.Fatalf("campaignd did not exit cleanly on SIGTERM: %v\n%s", err, log2)
	}
}

// assertServiceTrace checks a `soft matrix -service -trace` file is one
// merged Chrome timeline: the client's own campaign span on the local
// track plus the daemon's job span merged onto a remote track.
func assertServiceTrace(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read service trace: %v", err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int64  `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("service trace is not valid JSON: %v", err)
	}
	var campaignPid, jobPid int64 = -1, -1
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if strings.HasPrefix(ev.Name, "campaign:") {
			campaignPid = ev.Pid
		}
		if strings.HasPrefix(ev.Name, "job:") {
			jobPid = ev.Pid
		}
	}
	if campaignPid < 0 {
		t.Errorf("service trace misses the client campaign: span (%d events)", len(tf.TraceEvents))
	}
	if jobPid < 0 {
		t.Errorf("service trace misses the daemon job: span (%d events)", len(tf.TraceEvents))
	}
	if campaignPid >= 0 && jobPid >= 0 && campaignPid == jobPid {
		t.Errorf("campaign and job spans share pid %d: the daemon bundle was not merged onto its own track", jobPid)
	}
}
