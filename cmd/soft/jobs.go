package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/soft-testing/soft"
)

// The job verbs are thin clients of a `soft campaignd` service: submit
// enqueues a campaign, jobs lists the queue, fetch downloads a canonical
// report. They share the -service flag naming the daemon's base URL.

func submitCmd() *command {
	return &command{
		name:     "submit",
		synopsis: "submit a campaign job to a running campaign service",
		run:      runSubmit,
	}
}

func jobsCmd() *command {
	return &command{
		name:     "jobs",
		synopsis: "list a campaign service's jobs",
		run:      runJobs,
	}
}

func fetchCmd() *command {
	return &command{
		name:     "fetch",
		synopsis: "fetch a finished campaign job's canonical report",
		run:      runFetch,
	}
}

// serviceFlag registers the shared -service flag.
func serviceFlag(fs *flag.FlagSet) *string {
	return fs.String("service", "http://127.0.0.1:7130", "campaign service base URL (see 'soft campaignd')")
}

func runSubmit(e *env, args []string) error {
	fs := newFlags(e, "submit")
	service := serviceFlag(fs)
	tenant := fs.String("tenant", "", "tenant name for fair-share scheduling (default \"default\")")
	agentsFlag := fs.String("agents", "", "comma-separated agent names (default: all registered; see 'soft agents')")
	testsFlag := fs.String("tests", "", "comma-separated Table 1 test names (default: the whole suite; see 'soft tests')")
	maxPaths := fs.Int("max-paths", 0, "cap on explored paths per cell (0 = default); campaign truncation is canonical")
	models := fs.Bool("models", true, "extract a concrete input example per path")
	clauseSharing := fs.Bool("clause-sharing", false, "enable learned-clause sharing inside each cell's exploration")
	crossCheck := fs.Bool("crosscheck", true, "run phase 2 over every agent pair per test")
	codeVersion := fs.String("code-version", "", "override the job's cache-key code version (default: the service's)")
	watch := fs.Bool("watch", false, "stream progress and wait for the job to finish")
	out := fs.String("o", "", "with -watch: write the canonical report to this file once done")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}
	if *out != "" && !*watch {
		return usagef("-o needs -watch (or use 'soft fetch' once the job is done)")
	}
	// Validate names client-side so typos are usage errors (exit 2) like
	// everywhere else; the service re-validates on submission.
	agents := splitList(*agentsFlag)
	tests := splitList(*testsFlag)
	for _, a := range agents {
		if _, err := soft.AgentByName(a); err != nil {
			return usageError{err}
		}
	}
	for _, t := range tests {
		if _, ok := soft.TestByName(t); !ok {
			return usagef("unknown test %q (run 'soft tests')", t)
		}
	}

	ctx := context.Background()
	cl := soft.NewCampaignClient(*service)
	job, err := cl.Submit(ctx, soft.CampaignJobSpec{
		Tenant:        *tenant,
		Agents:        agents,
		Tests:         tests,
		MaxPaths:      *maxPaths,
		Models:        *models,
		ClauseSharing: *clauseSharing,
		CrossCheck:    *crossCheck,
		CodeVersion:   *codeVersion,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(e.stdout, "submitted %s (tenant %s): %d agents × %d tests\n",
		job.ID, job.Spec.Tenant, len(job.Spec.Agents), len(job.Spec.Tests))
	if !*watch {
		return nil
	}

	final, err := cl.Watch(ctx, job.ID, func(ev soft.CampaignEvent) {
		if ev.Total > 0 {
			fmt.Fprintf(e.stderr, "soft submit: %s %s: %d/%d work units\n", ev.Job, ev.State, ev.Done, ev.Total)
		} else {
			fmt.Fprintf(e.stderr, "soft submit: %s %s\n", ev.Job, ev.State)
		}
	})
	if err != nil {
		return err
	}
	if final.State != soft.CampaignDone {
		return fmt.Errorf("job %s %s: %s", final.ID, final.State, final.Error)
	}
	fmt.Fprintf(e.stdout, "%s done: %d inconsistencies\n", final.ID, final.Inconsistencies)
	if *out != "" {
		data, err := cl.Report(ctx, final.ID)
		if err != nil {
			return err
		}
		return os.WriteFile(*out, data, 0o644)
	}
	return nil
}

func runJobs(e *env, args []string) error {
	fs := newFlags(e, "jobs")
	service := serviceFlag(fs)
	tenant := fs.String("tenant", "", "list only this tenant's jobs")
	cancel := fs.String("cancel", "", "cancel this job id (queued: dequeued; running: aborted) instead of listing")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}
	cl := soft.NewCampaignClient(*service)
	if *cancel != "" {
		j, err := cl.Cancel(context.Background(), *cancel)
		if err != nil {
			return err
		}
		fmt.Fprintf(e.stdout, "cancelled %s (tenant %s)\n", j.ID, j.Spec.Tenant)
		return nil
	}
	jobs, err := cl.Jobs(context.Background(), *tenant)
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Fprintln(e.stdout, "no jobs")
		return nil
	}
	tw := tabwriter.NewWriter(e.stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "JOB\tTENANT\tSTATE\tMATRIX\tPROGRESS\tWAIT\tRUN\tRESTARTS\tSUBMITTED")
	now := time.Now()
	for _, j := range jobs {
		progress := "-"
		if j.Total > 0 {
			progress = fmt.Sprintf("%d/%d", j.Done, j.Total)
		}
		detail := string(j.State)
		if j.State == soft.CampaignFailed && j.Error != "" {
			detail += ": " + ellipsis(j.Error, 40)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d×%d\t%s\t%s\t%s\t%d\t%s\n",
			j.ID, j.Spec.Tenant, detail,
			len(j.Spec.Agents), len(j.Spec.Tests),
			progress, queueWait(j, now), runTime(j, now), j.Restarts,
			time.Unix(j.SubmittedUnix, 0).UTC().Format("2006-01-02 15:04:05"))
	}
	return tw.Flush()
}

// queueWait derives a job's submission → dispatch wait from the journal
// timestamps ("-" before either phase; still counting for queued jobs).
func queueWait(j *soft.CampaignJob, now time.Time) string {
	switch {
	case j.StartedUnix > 0:
		return fmtSeconds(j.StartedUnix - j.SubmittedUnix)
	case j.SubmittedUnix > 0:
		return fmtSeconds(now.Unix() - j.SubmittedUnix)
	}
	return "-"
}

// runTime derives a job's dispatch → terminal duration (still counting for
// running jobs).
func runTime(j *soft.CampaignJob, now time.Time) string {
	switch {
	case j.StartedUnix > 0 && j.FinishedUnix > 0:
		return fmtSeconds(j.FinishedUnix - j.StartedUnix)
	case j.StartedUnix > 0:
		return fmtSeconds(now.Unix() - j.StartedUnix)
	}
	return "-"
}

func fmtSeconds(s int64) string {
	if s < 0 {
		s = 0
	}
	return (time.Duration(s) * time.Second).String()
}

func ellipsis(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return strings.TrimSpace(s[:n]) + "..."
}

func runFetch(e *env, args []string) error {
	fs := newFlags(e, "fetch")
	service := serviceFlag(fs)
	out := fs.String("o", "", "write the report to this file (default: stdout)")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("usage: soft fetch [flags] <job-id>")
	}
	id := fs.Arg(0)
	cl := soft.NewCampaignClient(*service)
	data, err := cl.Report(context.Background(), id)
	if err != nil {
		return err
	}
	if *out != "" {
		return os.WriteFile(*out, data, 0o644)
	}
	_, err = e.stdout.Write(data)
	return err
}
