package main

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMatrixCLI drives a fleetless 2×2 campaign through the CLI: cold run
// with a store, warm re-run hitting every cell, byte-identical canonical
// reports, per-cell results files matching `soft explore`, and a bench
// JSON with a full cache-hit rate on the warm pass.
func TestMatrixCLI(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	cellsDir := filepath.Join(dir, "cells")
	coldReport := filepath.Join(dir, "cold.report")
	warmReport := filepath.Join(dir, "warm.report")
	benchFile := filepath.Join(dir, "bench.json")

	args := []string{
		"matrix", "-agents", "ref,modified", "-tests", "Packet Out,Stats Request",
		"-store", storeDir, "-code-version", "cli-test",
	}
	stdout, stderr, code := runCLI(t, append(args, "-results-dir", cellsDir, "-o", coldReport, "-bench-json", benchFile)...)
	if code != 0 {
		t.Fatalf("cold soft matrix: exit %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{
		"matrix ref,modified", "4 cells (4 explored, 0 cached)",
		"cell ref / Packet Out:", "cell modified / Stats Request:",
		"check Packet Out: ref vs modified:", "inconsistencies",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("cold matrix output misses %q:\n%s", want, stdout)
		}
	}

	// Per-cell results files must equal individual soft explore runs
	// (campaigns use the canonical cut; these cells are exhaustive, so a
	// plain explore matches byte for byte modulo wall clock).
	explored := filepath.Join(dir, "explored.results")
	if _, stderr, code := runCLI(t, "explore", "-agent", "ref", "-test", "Packet Out", "-workers", "4", "-o", explored); code != 0 {
		t.Fatalf("soft explore: exit %d\n%s", code, stderr)
	}
	wantCell, err := os.ReadFile(explored)
	if err != nil {
		t.Fatal(err)
	}
	gotCell, err := os.ReadFile(filepath.Join(cellsDir, "ref--Packet_Out.results"))
	if err != nil {
		t.Fatal(err)
	}
	if string(normalizeElapsed(t, gotCell)) != string(normalizeElapsed(t, wantCell)) {
		t.Fatal("matrix cell results differ from individual soft explore")
	}

	// Warm run: every cell cached, canonical report byte-identical.
	stdout, stderr, code = runCLI(t, append(args, "-o", warmReport, "-bench-json", benchFile, "-v")...)
	if code != 0 {
		t.Fatalf("warm soft matrix: exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "4 cells (0 explored, 4 cached)") {
		t.Errorf("warm run did not hit the store for every cell:\n%s", stdout)
	}
	if !strings.Contains(stderr, "result store: 4 hits") || !strings.Contains(stderr, "grouping cache: 4 hits") {
		t.Errorf("warm -v output misses cache statistics:\n%s", stderr)
	}
	cold, err := os.ReadFile(coldReport)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := os.ReadFile(warmReport)
	if err != nil {
		t.Fatal(err)
	}
	if string(cold) != string(warm) {
		t.Fatalf("canonical reports differ between cold and warm runs\n--- cold\n%s\n--- warm\n%s", cold, warm)
	}
	if !strings.HasPrefix(string(cold), "soft-matrix v1\n") {
		t.Fatalf("report does not start with the versioned magic line:\n%s", cold[:60])
	}

	// Both passes of the campaign must coexist in the bench file: the warm
	// run merges alongside the cold numbers instead of overwriting them.
	type benchPass struct {
		Cells        int     `json:"cells"`
		Explored     int     `json:"explored"`
		Cached       int     `json:"cached"`
		CacheHitRate float64 `json:"cache_hit_rate"`
		CellsPerSec  float64 `json:"cells_per_sec"`
	}
	var bench struct {
		Schema string     `json:"schema"`
		Cold   *benchPass `json:"cold"`
		Warm   *benchPass `json:"warm"`
	}
	data, err := os.ReadFile(benchFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("bench json: %v\n%s", err, data)
	}
	if bench.Schema != "soft-bench-matrix v2" {
		t.Errorf("bench schema = %q", bench.Schema)
	}
	if bench.Cold == nil || bench.Cold.Explored != 4 || bench.Cold.CacheHitRate != 0 || bench.Cold.CellsPerSec <= 0 {
		t.Errorf("cold bench pass wrong or overwritten: %+v", bench.Cold)
	}
	if bench.Warm == nil || bench.Warm.Cells != 4 || bench.Warm.Cached != 4 || bench.Warm.CacheHitRate != 1.0 || bench.Warm.CellsPerSec <= 0 {
		t.Errorf("warm bench pass wrong: %+v", bench.Warm)
	}

	// A different code version against the same store is refused up front
	// (exit 2) — silently reusing it would miss every entry, and two
	// unstamped binaries would collide on the fallback version.
	_, stderr, code = runCLI(t, "matrix", "-agents", "ref,modified", "-tests", "Packet Out,Stats Request",
		"-store", storeDir, "-code-version", "cli-test-2")
	if code != 2 {
		t.Fatalf("version-skewed store reuse: exit %d, want 2 (stderr %q)", code, stderr)
	}
	for _, want := range []string{"soft matrix:", "cli-test", "cli-test-2", "-store-migrate"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("skew message misses %q:\n%s", want, stderr)
		}
	}

	// -store-migrate re-stamps the store; the new version then re-explores
	// (old entries stay keyed under their own version).
	stdout, _, code = runCLI(t, "matrix", "-agents", "ref,modified", "-tests", "Packet Out,Stats Request",
		"-store", storeDir, "-code-version", "cli-test-2", "-store-migrate")
	if code != 0 {
		t.Fatalf("migrated matrix: exit %d", code)
	}
	if !strings.Contains(stdout, "(4 explored, 0 cached)") {
		t.Errorf("code-version bump still hit the cache:\n%s", stdout)
	}
}

// TestMatrixCLIUsageErrors pins exit code 2 for bad arguments.
func TestMatrixCLIUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"matrix", "-agents", "no-such-agent"},
		{"matrix", "-tests", "No Such Test"},
		{"matrix", "-shard-depth", "banana"},
		{"matrix", "-bench-pass", "tepid"},
		{"matrix", "-service", "http://127.0.0.1:1", "-store", "somewhere"},
		{"matrix", "-service", "http://127.0.0.1:1", "-addr", ":0"},
		{"matrix", "extra-arg"},
	} {
		_, stderr, code := runCLI(t, args...)
		if code != 2 {
			t.Errorf("soft %v: exit %d, want 2 (stderr %q)", args, code, stderr)
		}
		if !strings.Contains(stderr, "soft matrix:") {
			t.Errorf("soft %v error not prefixed: %q", args, stderr)
		}
	}
}

// TestServeShardDepthAuto pins the -shard-depth flag forms: "auto" is
// accepted (the run itself is covered by dist/sched tests), garbage is a
// usage error.
func TestServeShardDepthAuto(t *testing.T) {
	_, stderr, code := runCLI(t, "serve", "-shard-depth", "x7")
	if code != 2 || !strings.Contains(stderr, "shard-depth") {
		t.Fatalf("bad -shard-depth: exit %d, stderr %q", code, stderr)
	}
	// "auto" must pass flag validation; an unknown agent then stops the
	// run before any socket work.
	_, stderr, code = runCLI(t, "serve", "-shard-depth", "auto", "-agent", "no-such-agent")
	if code != 2 || !strings.Contains(stderr, "unknown agent") {
		t.Fatalf("-shard-depth auto rejected: exit %d, stderr %q", code, stderr)
	}
	if d, a, err := parseShardDepth("auto"); err != nil || !a || d != 0 {
		t.Fatalf("parseShardDepth(auto) = (%d, %t, %v)", d, a, err)
	}
	if d, a, err := parseShardDepth("5"); err != nil || a || d != 5 {
		t.Fatalf("parseShardDepth(5) = (%d, %t, %v)", d, a, err)
	}
}

// TestWorkVersionMismatchExit2 is the satellite bugfix property: a worker
// whose protocol version the coordinator refuses exits 2 with a
// "soft work:"-prefixed message naming the mismatch, not a raw decode
// error.
func TestWorkVersionMismatchExit2(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Read the hello frame, refuse it: [len][type=7][uvarint want=99].
		hdr := make([]byte, 4)
		if _, err := conn.Read(hdr); err != nil {
			return
		}
		body := make([]byte, 1024)
		conn.Read(body)
		conn.Write([]byte{0, 0, 0, 2, 7, 99})
	}()

	_, stderr, code := runCLI(t, "work", "-addr", ln.Addr().String())
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "soft work:") || !strings.Contains(stderr, "protocol version mismatch") {
		t.Fatalf("error message wrong:\n%s", stderr)
	}
	if !strings.Contains(stderr, "v99") || !strings.Contains(stderr, "this binary speaks") {
		t.Fatalf("mismatch detail missing:\n%s", stderr)
	}
}
