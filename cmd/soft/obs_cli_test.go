package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// traceFile mirrors the Chrome trace-event JSON shape the -trace flag
// writes ({"traceEvents": [...]}, what Perfetto loads).
type traceFile struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Ts   int64  `json:"ts"`
		Dur  int64  `json:"dur"`
	} `json:"traceEvents"`
}

// TestExploreTraceIsOffTheAnswerPath is the observability determinism
// gate at the CLI surface: the same exploration run with and without
// -trace must produce byte-identical results files, and the trace file
// must be valid Chrome-trace JSON carrying the run's spans.
func TestExploreTraceIsOffTheAnswerPath(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.results")
	traced := filepath.Join(dir, "traced.results")
	tracePath := filepath.Join(dir, "trace.json")

	if _, stderr, code := runCLI(t, "explore", "-agent", "ref", "-test", "Packet Out", "-o", plain); code != 0 {
		t.Fatalf("plain explore: exit %d\n%s", code, stderr)
	}
	if _, stderr, code := runCLI(t, "explore", "-agent", "ref", "-test", "Packet Out",
		"-trace", tracePath, "-o", traced); code != 0 {
		t.Fatalf("traced explore: exit %d\n%s", code, stderr)
	}

	want, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(traced)
	if err != nil {
		t.Fatal(err)
	}
	// Identity holds modulo the wall-clock elapsed header, the one line
	// that legitimately differs between any two runs.
	if !bytes.Equal(normalizeElapsed(t, got), normalizeElapsed(t, want)) {
		t.Fatalf("results differ with -trace enabled (%d vs %d bytes): instrumentation leaked into the answer path", len(got), len(want))
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace file carries no events")
	}
	var sawExplore bool
	for _, ev := range tf.TraceEvents {
		// Complete spans ("X") plus process_name metadata ("M") are the
		// only phases the writer emits.
		if ev.Ph != "X" && ev.Ph != "M" {
			t.Errorf("event %q has phase %q, want X or M", ev.Name, ev.Ph)
		}
		if strings.HasPrefix(ev.Name, "explore:") {
			sawExplore = true
		}
	}
	if !sawExplore {
		t.Errorf("no explore: span in trace (events: %d)", len(tf.TraceEvents))
	}
}

// TestMatrixTraceIsOffTheAnswerPath is the same gate over the campaign
// layer: a -trace campaign report is byte-identical to an untraced one.
func TestMatrixTraceIsOffTheAnswerPath(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.report")
	traced := filepath.Join(dir, "traced.report")
	tracePath := filepath.Join(dir, "trace.json")

	args := []string{"matrix", "-agents", "ref,modified", "-tests", "Packet Out"}
	if _, stderr, code := runCLI(t, append(args, "-o", plain)...); code != 0 {
		t.Fatalf("plain matrix: exit %d\n%s", code, stderr)
	}
	if _, stderr, code := runCLI(t, append(args, "-o", traced, "-trace", tracePath)...); code != 0 {
		t.Fatalf("traced matrix: exit %d\n%s", code, stderr)
	}
	want, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(traced)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("campaign reports differ with -trace enabled: instrumentation leaked into the answer path")
	}
	var tf traceFile
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	var sawCell, sawCheck bool
	for _, ev := range tf.TraceEvents {
		sawCell = sawCell || strings.HasPrefix(ev.Name, "cell:")
		sawCheck = sawCheck || strings.HasPrefix(ev.Name, "crosscheck:")
	}
	if !sawCell || !sawCheck {
		t.Errorf("trace misses campaign spans: cell=%v crosscheck=%v (events: %d)", sawCell, sawCheck, len(tf.TraceEvents))
	}
}

// TestMetricsMuxServesPrometheus pins the standalone endpoint `soft
// serve -metrics-addr` mounts: Prometheus text with the engine series,
// no pprof unless opted in.
func TestMetricsMuxServesPrometheus(t *testing.T) {
	ts := httptest.NewServer(newMetricsMux(false))
	defer ts.Close()

	stdout, _, code := runCLI(t, "stats", "-service", ts.URL, "-raw")
	if code != 0 {
		t.Fatalf("soft stats: exit %d", code)
	}
	for _, want := range []string{"# TYPE", "soft_sat_solves_total", "soft_store_result_hits_total"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stats -raw output misses %q", want)
		}
	}

	pretty, _, code := runCLI(t, "stats", "-service", ts.URL)
	if code != 0 {
		t.Fatalf("soft stats (pretty): exit %d", code)
	}
	if strings.Contains(pretty, "# TYPE") || strings.Contains(pretty, "_bucket{") {
		t.Errorf("pretty stats output leaks exposition noise:\n%s", pretty)
	}
	if !strings.Contains(pretty, "soft_sat_solves_total") {
		t.Errorf("pretty stats output misses the solver counter:\n%s", pretty)
	}

	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("pprof served without -pprof opt-in")
	}
}
