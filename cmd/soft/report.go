package main

import (
	"fmt"
	"time"

	"github.com/soft-testing/soft/internal/report"
)

func reportCmd() *command {
	return &command{
		name:     "report",
		synopsis: "reproduce the paper's evaluation: Tables 1-5, Figure 4, §5.1 experiments",
		run:      runReport,
	}
}

func runReport(e *env, args []string) error {
	fs := newFlags(e, "report")
	table := fs.Int("table", 0, "print one table (1-5)")
	figure := fs.Int("figure", 0, "print one figure (4)")
	injected := fs.Bool("injected", false, "run the §5.1.1 injected-modification experiment")
	inconsistencies := fs.Bool("inconsistencies", false, "run the §5.1.2 ref-vs-ovs classification")
	quick := fs.Bool("quick", false, "skip the slow FlowMod-family tests")
	maxPaths := fs.Int("max-paths", 0, "cap per-test exploration")
	budget := fs.Duration("budget", time.Minute, "per-crosscheck time budget")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("unexpected arguments %q", fs.Args())
	}
	if *table < 0 || *table > 5 {
		return usagef("tables are 1-5")
	}
	if *figure != 0 && *figure != 4 {
		return usagef("the paper's reproducible figure is 4")
	}

	o := report.Options{Quick: *quick, MaxPaths: *maxPaths, CheckBudget: *budget}
	specific := *table != 0 || *figure != 0 || *injected || *inconsistencies

	switch *table {
	case 1:
		fmt.Fprintln(e.stdout, report.Table1())
	case 2:
		fmt.Fprintln(e.stdout, report.Table2(o))
	case 3:
		fmt.Fprintln(e.stdout, report.Table3(o))
	case 4:
		fmt.Fprintln(e.stdout, report.Table4(o))
	case 5:
		fmt.Fprintln(e.stdout, report.Table5(o))
	}
	if *figure == 4 {
		fmt.Fprintln(e.stdout, report.Figure4(o))
	}
	if *injected {
		fmt.Fprintln(e.stdout, report.Injected(o))
	}
	if *inconsistencies {
		fmt.Fprintln(e.stdout, report.Inconsistencies(o))
	}
	if !specific {
		fmt.Fprintln(e.stdout, report.Table1())
		fmt.Fprintln(e.stdout, report.Table2(o))
		fmt.Fprintln(e.stdout, report.Table3(o))
		fmt.Fprintln(e.stdout, report.Table4(o))
		fmt.Fprintln(e.stdout, report.Table5(o))
		fmt.Fprintln(e.stdout, report.Figure4(o))
		fmt.Fprintln(e.stdout, report.Injected(o))
		fmt.Fprintln(e.stdout, report.Inconsistencies(o))
	}
	return nil
}
