// Command soft-diff is SOFT's second phase: it crosschecks two phase-1
// results files (from two different agents, same test), reporting every
// input subspace on which the agents behave differently, with a concrete
// witness input per inconsistency (§3.4). This phase needs no access to
// either agent's source code.
//
// Usage:
//
//	soft-diff ref-results.txt ovs-results.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/soft-testing/soft/internal/crosscheck"
	"github.com/soft-testing/soft/internal/group"
	"github.com/soft-testing/soft/internal/harness"
)

func load(path string) (*group.Result, *harness.SerializedResult) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soft-diff:", err)
		os.Exit(1)
	}
	defer f.Close()
	res, err := harness.ReadResults(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soft-diff:", err)
		os.Exit(1)
	}
	return group.Paths(res), res
}

func main() {
	budget := flag.Duration("budget", 0, "time budget for the check (0 = unlimited)")
	reproduce := flag.Bool("reproduce", false, "render a reproducer message per inconsistency")
	workers := flag.Int("workers", 0, "parallel crosscheck workers (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: soft-diff [-budget 1m] [-reproduce] [-workers N] a-results.txt b-results.txt")
		os.Exit(2)
	}
	ga, ra := load(flag.Arg(0))
	gb, _ := load(flag.Arg(1))
	if ra.Test != gb.Test {
		fmt.Fprintf(os.Stderr, "soft-diff: results are from different tests (%q vs %q)\n", ga.Test, gb.Test)
		os.Exit(2)
	}

	rep := crosscheck.RunParallel(ga, gb, nil, *budget, *workers)
	partial := ""
	if rep.Partial {
		partial = " (budget expired: partial)"
	}
	fmt.Printf("%s vs %s on %s: %d inconsistencies, ~%d root causes, %d solver queries in %s%s\n",
		rep.AgentA, rep.AgentB, rep.Test, len(rep.Inconsistencies), rep.RootCauses(),
		rep.Queries, rep.Elapsed.Round(time.Millisecond), partial)
	for k, inc := range rep.Inconsistencies {
		fmt.Printf("\n#%d %s\n", k, inc)
		if *reproduce {
			t, ok := harness.TestByName(rep.Test)
			if !ok {
				continue
			}
			wires := harness.Reproduce(t, inc.Witness)
			for i, w := range wires {
				fmt.Printf("  input %d (%s): %x\n", i, describe(wires)[i], w)
			}
		}
	}
}

func describe(wires [][]byte) []string { return harness.DescribeReproducer(wires) }
