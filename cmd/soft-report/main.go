// Command soft-report reproduces the paper's evaluation section: it runs
// the full pipeline and prints any (or all) of Table 1-5, Figure 4, the
// §5.1.1 injected-modification experiment, and the §5.1.2 inconsistency
// classes.
//
// Usage:
//
//	soft-report                 # everything
//	soft-report -table 2       # one table
//	soft-report -figure 4
//	soft-report -injected
//	soft-report -inconsistencies
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/soft-testing/soft/internal/report"
)

func main() {
	table := flag.Int("table", 0, "print one table (1-5)")
	figure := flag.Int("figure", 0, "print one figure (4)")
	injected := flag.Bool("injected", false, "run the §5.1.1 injected-modification experiment")
	inconsistencies := flag.Bool("inconsistencies", false, "run the §5.1.2 ref-vs-ovs classification")
	quick := flag.Bool("quick", false, "skip the slow FlowMod-family tests")
	maxPaths := flag.Int("max-paths", 0, "cap per-test exploration")
	budget := flag.Duration("budget", time.Minute, "per-crosscheck time budget")
	flag.Parse()

	o := report.Options{Quick: *quick, MaxPaths: *maxPaths, CheckBudget: *budget}
	specific := *table != 0 || *figure != 0 || *injected || *inconsistencies

	switch {
	case *table == 1:
		fmt.Println(report.Table1())
	case *table == 2:
		fmt.Println(report.Table2(o))
	case *table == 3:
		fmt.Println(report.Table3(o))
	case *table == 4:
		fmt.Println(report.Table4(o))
	case *table == 5:
		fmt.Println(report.Table5(o))
	case *table != 0:
		fmt.Fprintln(os.Stderr, "soft-report: tables are 1-5")
		os.Exit(2)
	}
	if *figure == 4 {
		fmt.Println(report.Figure4(o))
	} else if *figure != 0 {
		fmt.Fprintln(os.Stderr, "soft-report: the paper's reproducible figure is 4")
		os.Exit(2)
	}
	if *injected {
		fmt.Println(report.Injected(o))
	}
	if *inconsistencies {
		fmt.Println(report.Inconsistencies(o))
	}
	if !specific {
		fmt.Println(report.Table1())
		fmt.Println(report.Table2(o))
		fmt.Println(report.Table3(o))
		fmt.Println(report.Table4(o))
		fmt.Println(report.Table5(o))
		fmt.Println(report.Figure4(o))
		fmt.Println(report.Injected(o))
		fmt.Println(report.Inconsistencies(o))
	}
}
