// Package soft's root benchmark harness regenerates every table and figure
// of the paper's evaluation (§5) as a benchmark target, plus the ablation
// benches DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each bench reports domain metrics (paths, groups, inconsistencies,
// coverage) through testing.B's ReportMetric, so the bench output doubles
// as the experiment log.
package soft

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/agents/ovs"
	"github.com/soft-testing/soft/internal/agents/refswitch"
	"github.com/soft-testing/soft/internal/crosscheck"
	"github.com/soft-testing/soft/internal/group"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/report"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/sym"
	"github.com/soft-testing/soft/internal/symexec"
)

// benchAgents returns fresh agent models (construction is cheap; agents
// must not share coverage state across benches).
func benchAgents() (ref, ov agents.Agent) { return refswitch.New(), ovs.New() }

// BenchmarkTable1Tests measures building every Table 1 input sequence.
func BenchmarkTable1Tests(b *testing.B) {
	tests := harness.Tests()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, t := range tests {
			t.Inputs(sym.Var)
		}
	}
}

// benchExplore is the Table 2 worker: symbolic execution of one (test,
// agent) cell. Path counts are reported as metrics.
func benchExplore(b *testing.B, testName string, mk func() agents.Agent, maxPaths int) {
	t, ok := harness.TestByName(testName)
	if !ok {
		b.Fatalf("unknown test %s", testName)
	}
	var paths int
	for i := 0; i < b.N; i++ {
		r := harness.Explore(mk(), t, harness.Options{MaxPaths: maxPaths})
		paths = len(r.Paths)
	}
	b.ReportMetric(float64(paths), "paths")
}

// BenchmarkTable2SymbolicExecution regenerates Table 2 row by row. The
// FlowMod-family rows are capped so a full bench run stays in minutes (the
// paper's originals ran for hours to days).
func BenchmarkTable2SymbolicExecution(b *testing.B) {
	caps := map[string]int{"FlowMod": 2000, "Eth FlowMod": 0, "CS FlowMods": 2000}
	for _, tn := range []string{
		"Packet Out", "Stats Request", "Set Config", "Eth FlowMod",
		"FlowMod", "CS FlowMods", "Concrete", "Short Symb",
	} {
		tn := tn
		b.Run(tn+"/ref", func(b *testing.B) {
			benchExplore(b, tn, func() agents.Agent { return refswitch.New() }, caps[tn])
		})
		b.Run(tn+"/ovs", func(b *testing.B) {
			benchExplore(b, tn, func() agents.Agent { return ovs.New() }, caps[tn])
		})
	}
}

// benchExploreWorkers measures one (test, agent) exploration at a fixed
// worker count, reporting paths/sec — the scaling metric for the parallel
// engine.
func benchExploreWorkers(b *testing.B, testName string, mk func() agents.Agent, maxPaths, workers int) {
	t, ok := harness.TestByName(testName)
	if !ok {
		b.Fatalf("unknown test %s", testName)
	}
	b.ReportAllocs()
	var paths int
	for i := 0; i < b.N; i++ {
		r := harness.Explore(mk(), t, harness.Options{MaxPaths: maxPaths, Workers: workers})
		paths = len(r.Paths)
	}
	b.ReportMetric(float64(paths), "paths")
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(paths)*float64(b.N)/sec, "paths/sec")
	}
}

// BenchmarkExploreParallelStatsRequest scales the Table 2 Stats Request row
// across worker counts. The speedup over workers=1 is the parallel engine's
// headline number (the paper ran Cloud9 on a cluster for the same reason).
func BenchmarkExploreParallelStatsRequest(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			benchExploreWorkers(b, "Stats Request", func() agents.Agent { return refswitch.New() }, 0, w)
		})
	}
}

// BenchmarkExploreParallelFlowMod scales the capped FlowMod row — the
// heaviest Table 2 workload the bench suite runs.
func BenchmarkExploreParallelFlowMod(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			benchExploreWorkers(b, "FlowMod", func() agents.Agent { return refswitch.New() }, 2000, w)
		})
	}
}

// BenchmarkExploreParallelOVSPacketOut scales the OVS agent on Packet Out,
// exercising the second agent model under the parallel engine.
func BenchmarkExploreParallelOVSPacketOut(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			benchExploreWorkers(b, "Packet Out", func() agents.Agent { return ovs.New() }, 0, w)
		})
	}
}

// BenchmarkExploreParallelClauseSharing measures the learned-clause
// exchange against the share-nothing baseline on the heaviest explore
// workload, across worker counts. Results are byte-identical either way;
// the interesting number is paths/sec on multicore hardware.
func BenchmarkExploreParallelClauseSharing(b *testing.B) {
	t, ok := harness.TestByName("FlowMod")
	if !ok {
		b.Fatal("unknown test FlowMod")
	}
	for _, w := range []int{1, 4, 8} {
		for _, sharing := range []bool{false, true} {
			w, sharing := w, sharing
			b.Run(fmt.Sprintf("workers-%d/sharing-%t", w, sharing), func(b *testing.B) {
				b.ReportAllocs()
				var paths int
				var imports int64
				for i := 0; i < b.N; i++ {
					r := harness.Explore(refswitch.New(), t, harness.Options{
						MaxPaths: 2000, Workers: w, ClauseSharing: sharing,
					})
					paths = len(r.Paths)
					imports = r.SolverStats.ClauseImports
				}
				b.ReportMetric(float64(paths), "paths")
				b.ReportMetric(float64(imports), "imports")
			})
		}
	}
}

// BenchmarkExploreParallelIncremental is the incremental-solver before/
// after on the heaviest explore workload: per-path solvers (mode-baseline)
// vs one assumption-stack session per worker (mode-incremental) vs
// sessions plus diamond merging (mode-merge). Results are byte-identical
// across all three; paths/sec is the number the ROADMAP tracks.
func BenchmarkExploreParallelIncremental(b *testing.B) {
	t, ok := harness.TestByName("FlowMod")
	if !ok {
		b.Fatal("unknown test FlowMod")
	}
	modes := []struct {
		name               string
		incremental, merge bool
	}{
		{"mode-baseline", false, false},
		{"mode-incremental", true, false},
		{"mode-merge", true, true},
	}
	for _, w := range []int{1, 4} {
		for _, m := range modes {
			w, m := w, m
			b.Run(fmt.Sprintf("workers-%d/%s", w, m.name), func(b *testing.B) {
				b.ReportAllocs()
				var paths int
				for i := 0; i < b.N; i++ {
					r := harness.Explore(refswitch.New(), t, harness.Options{
						MaxPaths: 2000, Workers: w,
						Incremental: m.incremental, Merge: m.merge,
					})
					paths = len(r.Paths)
				}
				b.ReportMetric(float64(paths), "paths")
				if sec := b.Elapsed().Seconds(); sec > 0 {
					b.ReportMetric(float64(paths)*float64(b.N)/sec, "paths/sec")
				}
			})
		}
	}
}

// BenchmarkCrossCheckParallel scales phase 2 across worker counts and the
// two cache modes: one sharded single-flight cache shared by every worker,
// versus per-worker copy-on-write clones. The shared cache solves each
// distinct query once per run; clones trade duplicated solving for zero
// cross-worker contention.
func BenchmarkCrossCheckParallel(b *testing.B) {
	t, _ := harness.TestByName("Packet Out")
	ref, ov := benchAgents()
	ga := group.Paths(harness.Explore(ref, t, harness.Options{}).Serialized())
	gb := group.Paths(harness.Explore(ov, t, harness.Options{}).Serialized())
	for _, w := range []int{1, 2, 4, 8} {
		for _, private := range []bool{false, true} {
			w, private := w, private
			name := fmt.Sprintf("workers-%d/shared-cache", w)
			if private {
				name = fmt.Sprintf("workers-%d/private-caches", w)
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var found int
				for i := 0; i < b.N; i++ {
					rep := crosscheck.RunOpts(context.Background(), ga, gb, crosscheck.Opts{
						Solver: solver.New(), Workers: w, PrivateCaches: private,
					})
					found = len(rep.Inconsistencies)
				}
				b.ReportMetric(float64(found), "inconsistencies")
			})
		}
	}
}

// BenchmarkTable3Grouping regenerates the grouping columns of Table 3.
func BenchmarkTable3Grouping(b *testing.B) {
	for _, tn := range []string{"Packet Out", "Stats Request", "Set Config", "Short Symb"} {
		tn := tn
		b.Run(tn, func(b *testing.B) {
			t, _ := harness.TestByName(tn)
			in := harness.Explore(refswitch.New(), t, harness.Options{}).Serialized()
			b.ResetTimer()
			var groups int
			for i := 0; i < b.N; i++ {
				groups = len(group.Paths(in).Groups)
			}
			b.ReportMetric(float64(len(in.Paths)), "paths")
			b.ReportMetric(float64(groups), "groups")
		})
	}
}

// BenchmarkTable3Crosscheck regenerates the inconsistency-checking columns
// of Table 3.
func BenchmarkTable3Crosscheck(b *testing.B) {
	for _, tn := range []string{"Packet Out", "Stats Request", "Set Config", "Short Symb"} {
		tn := tn
		b.Run(tn, func(b *testing.B) {
			t, _ := harness.TestByName(tn)
			ref, ov := benchAgents()
			ga := group.Paths(harness.Explore(ref, t, harness.Options{}).Serialized())
			gb := group.Paths(harness.Explore(ov, t, harness.Options{}).Serialized())
			b.ResetTimer()
			var found int
			for i := 0; i < b.N; i++ {
				rep := crosscheck.Run(ga, gb, solver.New(), 0)
				found = len(rep.Inconsistencies)
			}
			b.ReportMetric(float64(found), "inconsistencies")
		})
	}
}

// BenchmarkTable4Coverage regenerates the coverage table's measurement
// loop for the fast tests.
func BenchmarkTable4Coverage(b *testing.B) {
	for _, tn := range []string{"Packet Out", "Stats Request", "Concrete"} {
		tn := tn
		b.Run(tn, func(b *testing.B) {
			t, _ := harness.TestByName(tn)
			var instr float64
			for i := 0; i < b.N; i++ {
				r := harness.Explore(refswitch.New(), t, harness.Options{})
				instr = r.InstrPct
			}
			b.ReportMetric(instr, "instr%")
		})
	}
}

// BenchmarkTable5Concretization regenerates the concretization ablation.
func BenchmarkTable5Concretization(b *testing.B) {
	for _, t := range harness.AblationTests() {
		t := t
		b.Run(t.Name, func(b *testing.B) {
			var paths int
			var cov float64
			for i := 0; i < b.N; i++ {
				r := harness.Explore(refswitch.New(), t, harness.Options{MaxPaths: 20000})
				paths = len(r.Paths)
				cov = r.InstrPct
			}
			b.ReportMetric(float64(paths), "paths")
			b.ReportMetric(cov, "instr%")
		})
	}
}

// BenchmarkFigure4CoverageVsMessages regenerates the Figure 4 series.
func BenchmarkFigure4CoverageVsMessages(b *testing.B) {
	for n := 1; n <= 3; n++ {
		n := n
		b.Run(harness.CoverageSequence(n).Name, func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				r := harness.Explore(refswitch.New(), harness.CoverageSequence(n),
					harness.Options{MaxPaths: 20000})
				cov = r.InstrPct
			}
			b.ReportMetric(cov, "instr%")
		})
	}
}

// BenchmarkAblationSearchStrategy compares the engine's search strategies
// on the same exhaustive exploration — §4.1 claims the choice has small
// impact because exploration runs to exhaustion.
func BenchmarkAblationSearchStrategy(b *testing.B) {
	t, _ := harness.TestByName("Packet Out")
	strategies := []struct {
		name string
		mk   func() symexec.Strategy
	}{
		{"dfs", symexec.NewDFS},
		{"bfs", symexec.NewBFS},
		{"random", func() symexec.Strategy { return symexec.NewRandom(1) }},
		{"cov-opt", symexec.NewCoverageOptimized},
		{"interleaved", func() symexec.Strategy { return symexec.NewInterleaved(1) }},
	}
	for _, s := range strategies {
		s := s
		b.Run(s.name, func(b *testing.B) {
			var paths int
			for i := 0; i < b.N; i++ {
				r := harness.Explore(refswitch.New(), t, harness.Options{Strategy: s.mk()})
				paths = len(r.Paths)
			}
			b.ReportMetric(float64(paths), "paths")
		})
	}
}

// BenchmarkAblationGrouping quantifies §3.4's grouping optimization:
// crosschecking grouped results versus raw per-path results.
func BenchmarkAblationGrouping(b *testing.B) {
	t, _ := harness.TestByName("Stats Request")
	ref, ov := benchAgents()
	ra := harness.Explore(ref, t, harness.Options{}).Serialized()
	rb := harness.Explore(ov, t, harness.Options{}).Serialized()
	ga, gb := group.Paths(ra), group.Paths(rb)

	// Ungrouped: one group per path.
	ungroup := func(in *harness.SerializedResult) *group.Result {
		out := &group.Result{Agent: in.Agent, Test: in.Test}
		for i := range in.Paths {
			p := &in.Paths[i]
			out.Groups = append(out.Groups, group.Group{
				Canonical: p.Canonical, Template: p.Template,
				Exprs: p.Exprs, Cond: p.Cond, Crashed: p.Crashed, PathCount: 1,
			})
		}
		return out
	}
	ua, ub := ungroup(ra), ungroup(rb)

	b.Run("grouped", func(b *testing.B) {
		var q int
		for i := 0; i < b.N; i++ {
			q = crosscheck.Run(ga, gb, solver.New(), 0).Queries
		}
		b.ReportMetric(float64(q), "queries")
	})
	b.Run("per-path", func(b *testing.B) {
		var q int
		for i := 0; i < b.N; i++ {
			q = crosscheck.Run(ua, ub, solver.New(), 0).Queries
		}
		b.ReportMetric(float64(q), "queries")
	})
}

// BenchmarkAblationOrTree compares §4.2's balanced OR construction with a
// naive linear chain, measured at the solver.
func BenchmarkAblationOrTree(b *testing.B) {
	t, _ := harness.TestByName("Packet Out")
	r := harness.Explore(refswitch.New(), t, harness.Options{}).Serialized()
	var conds []*sym.Expr
	for i := range r.Paths {
		conds = append(conds, r.Paths[i].Cond)
	}
	query := func(disj *sym.Expr) {
		s := solver.New()
		s.DisableCache = true
		if !s.Sat(disj) {
			b.Fatal("union of all paths must be satisfiable")
		}
	}
	b.Run("balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			query(group.BalancedOr(conds))
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			query(group.LinearOr(conds))
		}
	})
}

// BenchmarkAblationStructuredInputs contrasts a structured symbolic
// message (§3.2.1) with the unstructured Short Symb bytes: structure
// buys deep exploration of a single handler instead of shallow dispatch.
func BenchmarkAblationStructuredInputs(b *testing.B) {
	for _, tn := range []string{"Packet Out", "Short Symb"} {
		tn := tn
		b.Run(tn, func(b *testing.B) {
			t, _ := harness.TestByName(tn)
			var paths int
			var cov float64
			for i := 0; i < b.N; i++ {
				r := harness.Explore(refswitch.New(), t, harness.Options{})
				paths = len(r.Paths)
				cov = r.InstrPct
			}
			b.ReportMetric(float64(paths), "paths")
			b.ReportMetric(cov, "instr%")
		})
	}
}

// BenchmarkAblationSolver measures the solver façade's cache and
// simplifier contributions on the exploration workload.
func BenchmarkAblationSolver(b *testing.B) {
	t, _ := harness.TestByName("Stats Request")
	variants := []struct {
		name  string
		cache bool
		simp  bool
	}{
		{"cache+simplify", true, true},
		{"no-cache", false, true},
		{"no-simplify", true, false},
		{"bare", false, false},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := solver.New()
				s.DisableCache = !v.cache
				s.DisableSimplify = !v.simp
				harness.Explore(refswitch.New(), t, harness.Options{Solver: s})
			}
		})
	}
}

// BenchmarkInjectedDetection regenerates the §5.1.1 experiment on the fast
// tests.
func BenchmarkInjectedDetection(b *testing.B) {
	var detected int
	for i := 0; i < b.N; i++ {
		findings := report.InjectedData(report.Options{Quick: true, CheckBudget: 30 * time.Second})
		detected = 0
		for _, f := range findings {
			if f.Detected {
				detected++
			}
		}
	}
	b.ReportMetric(float64(detected), "detected")
}
