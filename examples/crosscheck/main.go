// The crosscheck example reproduces the paper's headline experiment
// (§5.1.2): it runs the Table 1 suite's fast tests over the Reference
// Switch and Open vSwitch models, crosschecks the results, and prints each
// inconsistency class with a concrete reproducer — the same findings the
// paper reports (crashes, silent drops, missing error messages, validation
// order, missing features).
package main

import (
	"fmt"
	"time"

	"github.com/soft-testing/soft/internal/agents/ovs"
	"github.com/soft-testing/soft/internal/agents/refswitch"
	"github.com/soft-testing/soft/internal/crosscheck"
	"github.com/soft-testing/soft/internal/group"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/report"
	"github.com/soft-testing/soft/internal/solver"
)

func main() {
	ref, ov := refswitch.New(), ovs.New()
	s := solver.New()
	tests := []string{"Packet Out", "Stats Request", "Set Config", "Short Symb"}

	classTotals := map[string]int{}
	classExample := map[string]crosscheck.Inconsistency{}
	classTest := map[string]string{}
	for _, name := range tests {
		t, _ := harness.TestByName(name)
		fmt.Printf("exploring %-14s ", name)
		ra := harness.Explore(ref, t, harness.Options{Solver: s, WantModels: true})
		rb := harness.Explore(ov, t, harness.Options{Solver: s, WantModels: true})
		rep := crosscheck.Run(group.Paths(ra.Serialized()), group.Paths(rb.Serialized()), s, time.Minute)
		fmt.Printf("ref %4d paths, ovs %4d paths -> %3d inconsistencies (~%d root causes)\n",
			len(ra.Paths), len(rb.Paths), len(rep.Inconsistencies), rep.RootCauses())
		for _, inc := range rep.Inconsistencies {
			c := report.Classify(inc)
			classTotals[c]++
			if _, ok := classExample[c]; !ok {
				classExample[c] = inc
				classTest[c] = name
			}
		}
	}

	fmt.Println("\nInconsistency classes found (§5.1.2):")
	for c, n := range classTotals {
		fmt.Printf("\n* %s (%d instances)\n", c, n)
		inc := classExample[c]
		fmt.Printf("    Reference Switch: %s\n", firstLine(inc.ACanonical))
		fmt.Printf("    Open vSwitch:     %s\n", firstLine(inc.BCanonical))
		t, _ := harness.TestByName(classTest[c])
		wires := harness.Reproduce(t, inc.Witness)
		for i, w := range wires {
			fmt.Printf("    reproducer input %d: %x\n", i, w)
		}
	}
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i] + " ..."
		}
	}
	return s
}
