// The crosscheck example reproduces the paper's headline experiment
// (§5.1.2) against the public soft API: it runs the Table 1 suite's fast
// tests over the Reference Switch and Open vSwitch models, crosschecks the
// results, and prints each inconsistency class with a concrete reproducer
// — the same findings the paper reports (crashes, silent drops, missing
// error messages, validation order, missing features).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/soft-testing/soft"
)

func main() {
	ctx := context.Background()
	ref, err := soft.AgentByName("ref")
	if err != nil {
		log.Fatal(err)
	}
	ov, err := soft.AgentByName("ovs")
	if err != nil {
		log.Fatal(err)
	}
	// One shared solver: its query cache carries over between explorations
	// and the crosschecks.
	s := soft.NewSolver()
	tests := []string{"Packet Out", "Stats Request", "Set Config", "Short Symb"}

	classTotals := map[string]int{}
	classExample := map[string]soft.Inconsistency{}
	classTest := map[string]string{}
	for _, name := range tests {
		t, _ := soft.TestByName(name)
		fmt.Printf("exploring %-14s ", name)
		ra, err := soft.Explore(ctx, ref, t, soft.WithSolver(s), soft.WithModels(true))
		if err != nil {
			log.Fatal(err)
		}
		rb, err := soft.Explore(ctx, ov, t, soft.WithSolver(s), soft.WithModels(true))
		if err != nil {
			log.Fatal(err)
		}
		rep, err := soft.CrossCheck(ctx, soft.Group(ra), soft.Group(rb),
			soft.WithSolver(s), soft.WithBudget(time.Minute))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ref %4d paths, ovs %4d paths -> %3d inconsistencies (~%d root causes)\n",
			len(ra.Paths), len(rb.Paths), len(rep.Inconsistencies), rep.RootCauses())
		for _, inc := range rep.Inconsistencies {
			c := soft.Classify(inc)
			classTotals[c]++
			if _, ok := classExample[c]; !ok {
				classExample[c] = inc
				classTest[c] = name
			}
		}
	}

	fmt.Println("\nInconsistency classes found (§5.1.2):")
	for c, n := range classTotals {
		fmt.Printf("\n* %s (%d instances)\n", c, n)
		inc := classExample[c]
		fmt.Printf("    Reference Switch: %s\n", firstLine(inc.ACanonical))
		fmt.Printf("    Open vSwitch:     %s\n", firstLine(inc.BCanonical))
		t, _ := soft.TestByName(classTest[c])
		for i, w := range soft.Reproduce(t, inc.Witness) {
			fmt.Printf("    reproducer input %d: %x\n", i, w)
		}
	}
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i] + " ..."
		}
	}
	return s
}
