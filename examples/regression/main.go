// The regression example shows §2.4's secondary application: using SOFT as
// an automated regression tester across two versions of one agent. The
// "old version" is the stock Reference Switch; the "new version" carries a
// one-line behavior change (a different error code for output port 0).
// Crosschecking the two versions flags exactly the input subspace whose
// behavior regressed, with a reproducer — no hand-written expectations.
package main

import (
	"fmt"
	"time"

	"github.com/soft-testing/soft/internal/agents/refswitch"
	"github.com/soft-testing/soft/internal/crosscheck"
	"github.com/soft-testing/soft/internal/group"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/solver"
)

func main() {
	oldVersion := refswitch.New()
	newVersion := refswitch.NewWithOptions("Reference Switch v2", refswitch.Options{
		PortZeroCode: true, // the regression under test
	})

	t, _ := harness.TestByName("Packet Out")
	s := solver.New()
	fmt.Println("regression-testing Packet Out across two versions of the Reference Switch...")
	rOld := harness.Explore(oldVersion, t, harness.Options{Solver: s, WantModels: true})
	rNew := harness.Explore(newVersion, t, harness.Options{Solver: s, WantModels: true})
	rep := crosscheck.Run(group.Paths(rOld.Serialized()), group.Paths(rNew.Serialized()), s, time.Minute)

	fmt.Printf("old: %d paths; new: %d paths; %d behavioral difference(s)\n\n",
		len(rOld.Paths), len(rNew.Paths), len(rep.Inconsistencies))
	for _, inc := range rep.Inconsistencies {
		fmt.Printf("regression:\n  old: %s\n  new: %s\n  witness: %v\n",
			inc.ACanonical, inc.BCanonical, inc.Witness)
		wires := harness.Reproduce(t, inc.Witness)
		for i, w := range wires {
			fmt.Printf("  reproducer input %d: %x\n", i, w)
		}
	}
	if len(rep.Inconsistencies) == 0 {
		fmt.Println("no regressions found")
	}
}
