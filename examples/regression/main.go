// The regression example shows §2.4's secondary application: using SOFT as
// an automated regression tester across two versions of one agent. The
// "old version" is the stock Reference Switch; the "new version" carries a
// one-line behavior change (a different error code for output port 0).
// Crosschecking the two versions flags exactly the input subspace whose
// behavior regressed, with a reproducer — no hand-written expectations.
//
// The example doubles as the bring-your-own-agent walkthrough: the v2
// agent is registered with soft.RegisterAgent and then used through the
// same registry lookup the CLI and the built-in agents go through.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/soft-testing/soft"
	"github.com/soft-testing/soft/internal/agents/refswitch"
)

func main() {
	// A vendor embedding SOFT registers its own agent implementation; here
	// the "new version" is the reference switch with one injected change.
	soft.RegisterAgent("ref-v2", func() soft.Agent {
		return refswitch.NewWithOptions("Reference Switch v2", refswitch.Options{
			PortZeroCode: true, // the regression under test
		})
	})

	ctx := context.Background()
	oldVersion, err := soft.AgentByName("ref")
	if err != nil {
		log.Fatal(err)
	}
	newVersion, err := soft.AgentByName("ref-v2")
	if err != nil {
		log.Fatal(err)
	}

	t, _ := soft.TestByName("Packet Out")
	s := soft.NewSolver()
	fmt.Println("regression-testing Packet Out across two versions of the Reference Switch...")
	rOld, err := soft.Explore(ctx, oldVersion, t, soft.WithSolver(s), soft.WithModels(true))
	if err != nil {
		log.Fatal(err)
	}
	rNew, err := soft.Explore(ctx, newVersion, t, soft.WithSolver(s), soft.WithModels(true))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := soft.CrossCheck(ctx, soft.Group(rOld), soft.Group(rNew),
		soft.WithSolver(s), soft.WithBudget(time.Minute))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("old: %d paths; new: %d paths; %d behavioral difference(s)\n\n",
		len(rOld.Paths), len(rNew.Paths), len(rep.Inconsistencies))
	for _, inc := range rep.Inconsistencies {
		fmt.Printf("regression:\n  old: %s\n  new: %s\n  witness: %v\n",
			inc.ACanonical, inc.BCanonical, inc.Witness)
		for i, w := range soft.Reproduce(t, inc.Witness) {
			fmt.Printf("  reproducer input %d: %x\n", i, w)
		}
	}
	if len(rep.Inconsistencies) == 0 {
		fmt.Println("no regressions found")
	}
}
