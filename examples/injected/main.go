// The injected example reproduces §5.1.1 through the public soft API:
// team members injected seven behavior modifications into the Reference
// Switch; SOFT pinpoints five and structurally cannot see two (the
// concrete Hello handshake and the untriggerable idle-timeout timer). The
// example prints each modification, whether the suite detected it, and why
// the misses are misses.
package main

import (
	"fmt"
	"time"

	"github.com/soft-testing/soft"
)

func main() {
	fmt.Printf("Modified Switch carries %d injected changes; %d are reachable by SOFT's tests.\n\n",
		soft.InjectedModifications, soft.DetectableInjectedModifications)

	findings := soft.InjectedFindings(soft.WithBudget(time.Minute))
	detected := 0
	for _, f := range findings {
		mark := "MISSED  "
		if f.Detected {
			mark = "DETECTED"
			detected++
		}
		fmt.Printf("[%s] %s\n          %s\n", mark, f.Name, f.Why)
	}
	fmt.Printf("\nSOFT detected %d of %d injected modifications (the paper: 5 of 7).\n",
		detected, len(findings))
}
