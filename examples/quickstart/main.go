// The quickstart example walks through the paper's §2.3 worked example
// using the public pipeline pieces directly: two toy Packet Out handlers
// (Figure 1's Agent 1 and Agent 2) are symbolically executed, their input
// spaces partitioned, the partitions grouped by output, and the crosscheck
// finds the single inconsistency — Agent 1 sends port OFPP_CONTROLLER to
// the controller while Agent 2 rejects it — and produces the concrete
// witness p = 0xfffd.
package main

import (
	"fmt"

	"github.com/soft-testing/soft/internal/openflow"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/sym"
	"github.com/soft-testing/soft/internal/symexec"
)

// agent1 is Figure 1's left handler: it supports the controller port.
func agent1(ctx *symexec.Context) {
	p := ctx.NewSym("port", 16)
	switch {
	case ctx.Branch(sym.EqConst(p, uint64(openflow.PortController))):
		ctx.Emit("CTRL")
	case ctx.Branch(sym.Ult(p, sym.Const(16, 25))):
		ctx.Emit("FWD")
	default:
		ctx.Emit("ERR")
	}
}

// agent2 is Figure 1's right handler: no controller-port support.
func agent2(ctx *symexec.Context) {
	p := ctx.NewSym("port", 16)
	if ctx.Branch(sym.Ult(p, sym.Const(16, 25))) {
		ctx.Emit("FWD")
	} else {
		ctx.Emit("ERR")
	}
}

func explore(name string, h symexec.Handler) map[string]*sym.Expr {
	eng := &symexec.Engine{}
	res := eng.Run(h)
	fmt.Printf("%s: %d paths\n", name, len(res.Paths))
	// Group paths by output result (§3.4): here each path has exactly one
	// output string.
	groups := map[string]*sym.Expr{}
	for _, p := range res.Paths {
		out := p.Outputs[0].(string)
		cond := p.Condition()
		if prev, ok := groups[out]; ok {
			cond = sym.LOr(prev, cond)
		}
		groups[out] = cond
		fmt.Printf("  path: output=%-4s condition=%v\n", out, p.Condition())
	}
	return groups
}

func main() {
	fmt.Println("SOFT quickstart: the paper's Figure 1 / Figure 2 example.")
	fmt.Println()
	g1 := explore("Agent 1", agent1)
	g2 := explore("Agent 2", agent2)

	fmt.Println("\nCrosschecking result groups (different outputs, intersecting subspaces):")
	s := solver.New()
	found := 0
	for out1, c1 := range g1 {
		for out2, c2 := range g2 {
			if out1 == out2 {
				continue
			}
			if res, model := s.Check(c1, c2); res == solver.Sat {
				found++
				fmt.Printf("  inconsistency: Agent1=%s Agent2=%s at port=%#x\n",
					out1, out2, model["port"])
			}
		}
	}
	if found == 0 {
		fmt.Println("  none found")
		return
	}
	fmt.Println("\nAs in the paper: the only inconsistency is the controller port (0xfffd).")
}
