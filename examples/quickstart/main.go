// The quickstart example walks through the paper's §2.3 worked example
// against the public soft API: two toy Packet Out handlers (Figure 1's
// Agent 1 and Agent 2) are symbolically executed with soft.ExploreHandler,
// their paths grouped by output behavior, and soft.CrossCheck finds the
// single inconsistency — Agent 1 sends port OFPP_CONTROLLER to the
// controller while Agent 2 rejects it — and produces the concrete witness
// p = 0xfffd.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/soft-testing/soft"
)

// Keep in sync with cmd/soft/quickstart.go: the `soft quickstart`
// subcommand runs the same golden flow; this copy stays self-contained
// (public API only) so it doubles as copy-pasteable documentation. Both
// are pinned to the 0xfffd witness by the test/verify gates.

// agent1 is Figure 1's left handler: it supports the controller port.
func agent1(ctx *soft.ExecContext) {
	p := ctx.NewSym("port", 16)
	switch {
	case ctx.Branch(soft.EqConst(p, 0xfffd)): // OFPP_CONTROLLER
		ctx.Emit("CTRL")
	case ctx.Branch(soft.Ult(p, soft.Const(16, 25))):
		ctx.Emit("FWD")
	default:
		ctx.Emit("ERR")
	}
}

// agent2 is Figure 1's right handler: no controller-port support.
func agent2(ctx *soft.ExecContext) {
	p := ctx.NewSym("port", 16)
	if ctx.Branch(soft.Ult(p, soft.Const(16, 25))) {
		ctx.Emit("FWD")
	} else {
		ctx.Emit("ERR")
	}
}

// explore runs one toy handler and shapes its paths into the phase-1
// result form the grouping and crosscheck stages consume: the emitted
// string is the normalized trace, the path condition travels alongside.
func explore(ctx context.Context, name string, h soft.Handler) *soft.Grouped {
	res, err := soft.ExploreHandler(ctx, h, soft.WithModels(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d paths\n", name, len(res.Paths))
	sr := &soft.SerializedResult{Agent: name, Test: "Figure 1"}
	for _, p := range res.Paths {
		out := p.Outputs[0].(string)
		fmt.Printf("  path: output=%-4s condition=%v\n", out, p.Condition())
		sr.Paths = append(sr.Paths, soft.SerializedPath{
			ID: p.ID, Cond: p.Condition(), Template: out, Canonical: out, Model: p.Model,
		})
	}
	return soft.GroupSerialized(sr)
}

func main() {
	fmt.Println("SOFT quickstart: the paper's Figure 1 / Figure 2 example.")
	fmt.Println()
	ctx := context.Background()
	g1 := explore(ctx, "Agent 1", agent1)
	g2 := explore(ctx, "Agent 2", agent2)

	fmt.Println("\nCrosschecking result groups (different outputs, intersecting subspaces):")
	rep, err := soft.CrossCheck(ctx, g1, g2)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Inconsistencies) == 0 {
		fmt.Println("  none found")
		return
	}
	for _, inc := range rep.Inconsistencies {
		fmt.Printf("  inconsistency: Agent1=%s Agent2=%s at port=%#x\n",
			inc.ACanonical, inc.BCanonical, inc.Witness["port"])
	}
	fmt.Println("\nAs in the paper: the only inconsistency is the controller port (0xfffd).")
}
