module github.com/soft-testing/soft

go 1.21
