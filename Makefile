# SOFT reproduction — build/verify entry points.
#
#   make build   compile everything
#   make vet     static analysis
#   make test    full test suite (tier-1 gate: build + test)
#   make race    race-detector pass over the concurrency-sensitive packages
#   make bench   the paper's evaluation benches + parallel scaling benches
#   make check   build + vet + test (what CI should run)

GO ?= go

.PHONY: build vet test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/symexec/ ./internal/harness/ ./internal/solver/ ./internal/crosscheck/ .

bench:
	$(GO) test -bench=. -benchmem .

check: build vet test
