# SOFT reproduction — build/verify entry points.
#
#   make build         compile everything
#   make vet           static analysis
#   make test          full test suite (tier-1 gate: build + test)
#   make race          race-detector pass over the concurrency-sensitive packages
#   make e2e-dist      multi-process distributed exploration e2e (coordinator +
#                      2 workers + worker kill, byte-identity vs -workers 4)
#   make dist-demo     run a coordinator and two workers locally for a quick look
#   make bench         the paper's evaluation benches + parallel scaling benches
#   make bench-solver  solver-stack scaling benches (parallel explore, clause
#                      sharing, sharded-cache crosscheck) — run on multicore
#                      hardware for meaningful numbers
#   make bench-smoke   every scaling bench once (CI bit-rot guard, no timing value)
#   make check         build + vet + test (what CI should run)

GO ?= go

.PHONY: build vet test race e2e-dist dist-demo bench bench-solver bench-smoke check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sat/ ./internal/bitblast/ ./internal/symexec/ ./internal/harness/ ./internal/solver/ ./internal/crosscheck/ ./internal/dist/ .

e2e-dist:
	$(GO) test -run TestDistE2E -v ./cmd/soft/

# A 10-second look at distributed exploration on one machine: coordinator on
# an ephemeral-ish port, two workers, result on stdout-adjacent files under
# /tmp. The serve process exits once both workers have drained the shards.
DIST_DEMO_ADDR ?= 127.0.0.1:7473
dist-demo:
	$(GO) build -o /tmp/soft-dist-demo ./cmd/soft
	@echo "== coordinator on $(DIST_DEMO_ADDR), 2 workers, agent=ref test='Packet Out' =="
	@/tmp/soft-dist-demo serve -addr $(DIST_DEMO_ADDR) -agent ref -test "Packet Out" \
		-shard-depth 4 -progress -v -timeout 2m -o /tmp/soft-dist-demo.results & \
	sleep 0.3; \
	/tmp/soft-dist-demo work -addr $(DIST_DEMO_ADDR) -name demo-worker-1 -v & \
	/tmp/soft-dist-demo work -addr $(DIST_DEMO_ADDR) -name demo-worker-2 -v & \
	wait
	@echo "== merged results =="
	@head -n 6 /tmp/soft-dist-demo.results
	@echo "   ... (full file: /tmp/soft-dist-demo.results)"

bench:
	$(GO) test -bench=. -benchmem .

bench-solver:
	$(GO) test -run NONE -bench 'ExploreParallel|CrossCheck' -benchmem .

bench-smoke:
	$(GO) test -run NONE -bench 'ExploreParallel|CrossCheck' -benchtime=1x .

check: build vet test
