# SOFT reproduction — build/verify entry points.
#
#   make build         compile everything
#   make vet           static analysis
#   make test          full test suite (tier-1 gate: build + test)
#   make race          race-detector pass over the concurrency-sensitive packages
#   make bench         the paper's evaluation benches + parallel scaling benches
#   make bench-solver  solver-stack scaling benches (parallel explore, clause
#                      sharing, sharded-cache crosscheck) — run on multicore
#                      hardware for meaningful numbers
#   make bench-smoke   every scaling bench once (CI bit-rot guard, no timing value)
#   make check         build + vet + test (what CI should run)

GO ?= go

.PHONY: build vet test race bench bench-solver bench-smoke check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sat/ ./internal/bitblast/ ./internal/symexec/ ./internal/harness/ ./internal/solver/ ./internal/crosscheck/ .

bench:
	$(GO) test -bench=. -benchmem .

bench-solver:
	$(GO) test -run NONE -bench 'ExploreParallel|CrossCheck' -benchmem .

bench-smoke:
	$(GO) test -run NONE -bench 'ExploreParallel|CrossCheck' -benchtime=1x .

check: build vet test
