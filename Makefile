# SOFT reproduction — build/verify entry points.
#
#   make build         compile everything
#   make vet           static analysis
#   make test          full test suite (tier-1 gate: build + test)
#   make race          race-detector pass over the concurrency-sensitive packages
#   make e2e-dist      multi-process distributed exploration e2e (coordinator +
#                      2 workers + worker kill, byte-identity vs -workers 4)
#   make e2e-matrix    multi-process campaign e2e (2×2 matrix on a 2-worker
#                      fleet, worker kill mid-campaign, byte-identity vs a
#                      fleetless run, warm store re-run)
#   make e2e-serve     campaign-service e2e (submit to soft campaignd,
#                      SIGKILL the daemon mid-campaign, restart on the same
#                      store, byte-identity of the resumed report)
#   make e2e-scenario  scenario determinism e2e (sequential vs 4 workers vs a
#                      2-worker fleet, byte-identity) plus the pinned stateful
#                      ref-vs-ovs regression
#   make dist-demo     run a coordinator and two workers locally for a quick look
#   make bench-matrix  campaign throughput metrics: cold + warm 2×2 campaign,
#                      writes BENCH_matrix.json (cells/sec, cache-hit rate)
#   make bench-scenario cold scenario exploration baselines (paths/sec at
#                      1/2/4/8 workers over two seed scenarios), merged into
#                      BENCH_matrix.json's scenario_cold object
#   make bench-incremental before/after paths/sec for the incremental solver
#                      stack on a FlowMod-class scenario (per-path solvers vs
#                      assumption-stack sessions), merged into
#                      BENCH_matrix.json's incremental object with speedups
#   make bench-dist    fleet scaling points: the FlowMod matrix on a real TCP
#                      fleet at 1/2/4 worker processes (paths/sec, lease-RTT
#                      p50/p99), merged into BENCH_matrix.json's dist_scaling
#                      object
#   make bench         the paper's evaluation benches + parallel scaling benches
#   make bench-solver  solver-stack scaling benches (parallel explore, clause
#                      sharing, sharded-cache crosscheck) — run on multicore
#                      hardware for meaningful numbers
#   make bench-smoke   every scaling bench once (CI bit-rot guard, no timing value)
#   make check         build + vet + test (what CI should run)

GO ?= go

.PHONY: build vet test race e2e-dist e2e-matrix e2e-serve e2e-scenario dist-demo bench bench-matrix bench-scenario bench-incremental bench-dist bench-solver bench-smoke check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sat/ ./internal/bitblast/ ./internal/symexec/ ./internal/harness/ ./internal/solver/ ./internal/crosscheck/ ./internal/dist/ ./internal/sched/ ./internal/campaignd/ ./internal/scenario/ ./internal/obs/ .

e2e-dist:
	$(GO) test -run TestDistE2E -v ./cmd/soft/

e2e-matrix:
	$(GO) test -run TestMatrixE2E -v ./cmd/soft/

e2e-serve:
	$(GO) test -run TestCampaignServeE2E -v ./cmd/soft/

e2e-scenario:
	$(GO) test -run 'TestScenarioDeterminismAcrossLayouts|TestScenarioExposesStatefulInconsistency' -v .

# Campaign throughput trajectory: run the same small campaign cold (store
# empty) then warm (all cells cached); both passes merge their metrics into
# BENCH_matrix.json as its "cold" and "warm" objects (cells/sec over
# explored cells, cache-hit rate). Timings are only meaningful on quiet
# multicore hardware, but the JSON schema is what perf tracking keys on.
bench-matrix:
	$(GO) build -o /tmp/soft-bench-matrix-bin ./cmd/soft
	@rm -f BENCH_matrix.json; \
	store=$$(mktemp -d /tmp/soft-bench-matrix.XXXXXX); \
	/tmp/soft-bench-matrix-bin matrix -agents ref,modified \
		-tests "Packet Out,Stats Request" -store $$store \
		-code-version bench -bench-json BENCH_matrix.json >/dev/null && \
	/tmp/soft-bench-matrix-bin matrix -agents ref,modified \
		-tests "Packet Out,Stats Request" -store $$store \
		-code-version bench -bench-json BENCH_matrix.json >/dev/null; \
	status=$$?; rm -rf $$store; exit $$status
	@cat BENCH_matrix.json

# Cold scenario exploration baselines: paths/sec for two seed scenarios at
# 1/2/4/8 workers, each run engine-cold (no store involved — the metric is
# raw multi-message exploration throughput). Results merge into
# BENCH_matrix.json's "scenario_cold" object keyed "<scenario>/w<N>".
bench-scenario:
	$(GO) build -o /tmp/soft-bench-scenario-bin ./cmd/soft
	@for sc in "Add Modify" "Netplugin VXLAN"; do \
		for w in 1 2 4 8; do \
			/tmp/soft-bench-scenario-bin explore -scenario "$$sc" -workers $$w \
				-bench-json BENCH_matrix.json -o /dev/null || exit 1; \
		done; \
	done
	@cat BENCH_matrix.json

# Incremental-solver before/after: the FlowMod test (the heaviest Table 2
# workload the benches run) explored with per-path solvers
# (-incremental=false, the old engine) and with assumption-stack sessions
# (the default). Models are off so the metric is raw engine throughput.
# Both halves merge into BENCH_matrix.json's "incremental" object keyed
# "FlowMod/w<N>"; the speedup field appears once a key has both halves.
# Run on quiet hardware.
bench-incremental:
	$(GO) build -o /tmp/soft-bench-incremental-bin ./cmd/soft
	@for w in 1 4; do \
		/tmp/soft-bench-incremental-bin explore -test FlowMod -models=false -workers $$w \
			-incremental=false -bench-json BENCH_matrix.json -o /dev/null || exit 1; \
		/tmp/soft-bench-incremental-bin explore -test FlowMod -models=false -workers $$w \
			-bench-json BENCH_matrix.json -o /dev/null || exit 1; \
	done
	@cat BENCH_matrix.json

# Distributed scaling points: the same FlowMod exploration matrix driven
# through a real TCP fleet at 1, 2, and 4 worker processes. Crosscheck and
# model extraction are off so the metric is shard exploration throughput;
# determinism makes every width's report byte-identical, so only the
# timing and lease-RTT quantiles differ across the three dist_scaling/w<N>
# objects merged into BENCH_matrix.json. Run on quiet multicore hardware.
BENCH_DIST_ADDR ?= 127.0.0.1:7479
bench-dist:
	$(GO) build -o /tmp/soft-bench-dist-bin ./cmd/soft
	@for w in 1 2 4; do \
		echo "== fleet width $$w =="; \
		/tmp/soft-bench-dist-bin matrix -agents ref,modified -tests FlowMod \
			-crosscheck=false -models=false -addr $(BENCH_DIST_ADDR) -shard-depth 4 \
			-bench-dist $$w -bench-json BENCH_matrix.json -o /dev/null & \
		pid=$$!; sleep 0.3; \
		i=0; while [ $$i -lt $$w ]; do \
			i=$$((i+1)); \
			/tmp/soft-bench-dist-bin work -addr $(BENCH_DIST_ADDR) -name bench-w$$i & \
		done; \
		wait $$pid || exit 1; wait; \
	done
	@cat BENCH_matrix.json

# A 10-second look at distributed exploration on one machine: coordinator on
# an ephemeral-ish port, two workers, result on stdout-adjacent files under
# /tmp. The serve process exits once both workers have drained the shards.
DIST_DEMO_ADDR ?= 127.0.0.1:7473
dist-demo:
	$(GO) build -o /tmp/soft-dist-demo ./cmd/soft
	@echo "== coordinator on $(DIST_DEMO_ADDR), 2 workers, agent=ref test='Packet Out' =="
	@/tmp/soft-dist-demo serve -addr $(DIST_DEMO_ADDR) -agent ref -test "Packet Out" \
		-shard-depth 4 -progress -v -timeout 2m -o /tmp/soft-dist-demo.results & \
	sleep 0.3; \
	/tmp/soft-dist-demo work -addr $(DIST_DEMO_ADDR) -name demo-worker-1 -v & \
	/tmp/soft-dist-demo work -addr $(DIST_DEMO_ADDR) -name demo-worker-2 -v & \
	wait
	@echo "== merged results =="
	@head -n 6 /tmp/soft-dist-demo.results
	@echo "   ... (full file: /tmp/soft-dist-demo.results)"

bench:
	$(GO) test -bench=. -benchmem .

bench-solver:
	$(GO) test -run NONE -bench 'ExploreParallel|CrossCheck' -benchmem .

bench-smoke:
	$(GO) test -run NONE -bench 'ExploreParallel|CrossCheck' -benchtime=1x .
	$(GO) build -o /tmp/soft-bench-smoke-bin ./cmd/soft
	@/tmp/soft-bench-smoke-bin explore -scenario "Add Modify" -incremental=false -o /dev/null
	@/tmp/soft-bench-smoke-bin explore -scenario "Add Modify" -incremental -o /dev/null
	@/tmp/soft-bench-smoke-bin explore -scenario "Add Modify" -merge -o /dev/null

check: build vet test
